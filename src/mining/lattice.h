// Intervention-pattern lattice traversal (Section 5.2). The space of all
// intervention patterns forms a lattice ordered by predicate inclusion; we
// traverse it top-down, materializing a node only when every parent
// (pattern with one fewer predicate) had a positive CATE. The evaluation
// itself — CATE estimation and fairness-aware benefit scoring — is supplied
// by the caller, which keeps this module independent of the causal layer.

#ifndef FAIRCAP_MINING_LATTICE_H_
#define FAIRCAP_MINING_LATTICE_H_

#include <functional>
#include <optional>
#include <vector>

#include "mining/pattern.h"
#include "util/result.h"

namespace faircap {

/// Result of evaluating one candidate treatment.
struct TreatmentEval {
  double cate = 0.0;    ///< estimated conditional average treatment effect
  double score = 0.0;   ///< selection score (benefit); higher is better
  bool feasible = true; ///< satisfies per-rule constraints (e.g. individual fairness)
  double std_error = 0.0;  ///< standard error of `cate`
  /// Subgroup effects behind `score` when the evaluator estimated them
  /// (fairness-aware evaluation batches the protected / non-protected
  /// CATEs with the overall one); 0 otherwise. Winning treatments carry
  /// these into rule costing so the emitted rule needs no re-estimation.
  double utility_protected = 0.0;
  double utility_nonprotected = 0.0;
  /// False when a subgroup effect was needed but could not be estimated
  /// (no overlap); such treatments cannot have their fairness certified.
  bool subgroups_estimable = true;
  /// True when utility_protected / utility_nonprotected were actually
  /// estimated (fairness-aware evaluation), not defaulted.
  bool has_subgroup_utilities = false;
};

/// Evaluates an intervention pattern for a fixed grouping pattern.
/// Returns nullopt when the effect cannot be estimated (no overlap, group
/// too small). `cate` drives lattice pruning; `score` drives selection.
using TreatmentEvaluator =
    std::function<std::optional<TreatmentEval>(const Pattern&)>;

/// Tuning knobs for the traversal.
struct LatticeOptions {
  /// Maximum number of predicates in an intervention pattern.
  size_t max_predicates = 2;
  /// Safety cap on evaluator invocations per traversal.
  size_t max_evaluations = 50000;
  /// The Section 5.2 pruning rule: materialize a node only when every
  /// parent had positive CATE. Disable for the ablation study (children
  /// of any evaluated parent are then expanded).
  bool require_positive_parents = true;
};

/// Outcome of a traversal.
struct LatticeResult {
  /// Feasible positive-CATE pattern with the highest score, if any.
  std::optional<Pattern> best;
  TreatmentEval best_eval;
  size_t num_evaluated = 0;
  /// All positive-CATE patterns seen (for diagnostics/tests).
  std::vector<std::pair<Pattern, TreatmentEval>> positive;
};

/// Candidate atoms for intervention patterns: one (attr = category)
/// predicate per category of each mutable categorical attribute.
/// Numeric mutable attributes are skipped (discretize first).
std::vector<Predicate> EnumerateInterventionAtoms(
    const DataFrame& df, const std::vector<size_t>& mutable_attrs);

/// Traverses the lattice and returns the best feasible treatment.
LatticeResult TraverseInterventionLattice(
    const DataFrame& df, const std::vector<size_t>& mutable_attrs,
    const TreatmentEvaluator& evaluator, const LatticeOptions& options = {});

}  // namespace faircap

#endif  // FAIRCAP_MINING_LATTICE_H_
