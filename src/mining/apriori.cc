#include "mining/apriori.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace faircap {

namespace {

// An item is a frequent (attribute = category) predicate. Its coverage
// mask lives in the DataFrame's PredicateIndex and is held via shared
// ownership: mining inserts conjunction masks as it goes, and under a
// memory budget an insertion may evict cold atom masks.
struct Item {
  size_t attr;
  int32_t code;
  std::shared_ptr<const Bitmap> coverage;
  size_t support;
};

// A candidate/frequent itemset at some level: sorted item indices plus the
// intersected coverage.
struct ItemSet {
  std::vector<uint32_t> items;  // indices into the item table, ascending
  Bitmap coverage;
  size_t support;
};

std::string ItemSetKey(const std::vector<uint32_t>& items) {
  std::string key;
  for (uint32_t it : items) {
    key += std::to_string(it);
    key += ',';
  }
  return key;
}

}  // namespace

Result<std::vector<FrequentPattern>> MineFrequentPatterns(
    const DataFrame& df, const std::vector<size_t>& attrs,
    const AprioriOptions& options) {
  if (options.min_support_fraction < 0.0 ||
      options.min_support_fraction > 1.0) {
    return Status::InvalidArgument("min_support_fraction must be in [0,1]");
  }
  for (size_t attr : attrs) {
    if (attr >= df.num_columns()) {
      return Status::OutOfRange("attribute index out of range");
    }
    if (df.column(attr).type() != AttrType::kCategorical) {
      return Status::InvalidArgument(
          "Apriori requires categorical attributes; discretize '" +
          df.schema().attribute(attr).name + "' first");
    }
  }

  const size_t n = df.num_rows();
  const size_t min_support = static_cast<size_t>(
      std::ceil(options.min_support_fraction * static_cast<double>(n)));

  std::vector<FrequentPattern> out;
  if (options.include_empty_pattern) {
    out.push_back({Pattern::Empty(), df.AllRows(), n});
  }
  if (n == 0 || options.max_pattern_length == 0) return out;

  // Level 1: count every (attr, code) pair in one columnar pass, then pull
  // masks for the frequent codes only from the shared PredicateIndex (at
  // most 1/min_support_fraction codes per attribute can be frequent, so
  // high-cardinality columns never materialize masks for their rare
  // categories). The masks stay cached for step 2 and rule costing.
  PredicateIndex& index = df.predicate_index();
  std::vector<Item> items;
  for (size_t attr : attrs) {
    const Column& col = df.column(attr);
    std::vector<size_t> counts(col.num_categories(), 0);
    for (size_t row = 0; row < n; ++row) {
      const int32_t c = col.code(row);
      if (c != Column::kNullCode) ++counts[static_cast<size_t>(c)];
    }
    for (size_t code = 0; code < counts.size(); ++code) {
      if (counts[code] < min_support || counts[code] == 0) continue;
      std::shared_ptr<const Bitmap> coverage = index.AtomMaskShared(
          df, attr, CompareOp::kEq,
          Value(col.CategoryName(static_cast<int32_t>(code))));
      items.push_back({attr, static_cast<int32_t>(code), std::move(coverage),
                       counts[code]});
    }
  }

  auto make_pattern = [&](const std::vector<uint32_t>& item_ids) {
    std::vector<Predicate> preds;
    preds.reserve(item_ids.size());
    for (uint32_t id : item_ids) {
      const Item& item = items[id];
      preds.emplace_back(
          item.attr, CompareOp::kEq,
          Value(df.column(item.attr).CategoryName(item.code)));
    }
    return Pattern(std::move(preds));
  };

  std::vector<ItemSet> level;
  level.reserve(items.size());
  for (uint32_t i = 0; i < items.size(); ++i) {
    level.push_back({{i}, *items[i].coverage, items[i].support});
    out.push_back({make_pattern({i}), *items[i].coverage, items[i].support});
    if (out.size() >= options.max_patterns) return out;
  }

  // Levels 2..max: apriori-gen join (shared (k-1)-prefix) + subset pruning.
  for (size_t k = 2; k <= options.max_pattern_length && level.size() > 1;
       ++k) {
    std::unordered_set<std::string> frequent_keys;
    frequent_keys.reserve(level.size());
    for (const ItemSet& s : level) frequent_keys.insert(ItemSetKey(s.items));

    std::vector<ItemSet> next;
    for (size_t a = 0; a < level.size(); ++a) {
      for (size_t b = a + 1; b < level.size(); ++b) {
        const auto& ia = level[a].items;
        const auto& ib = level[b].items;
        // Join requires identical prefixes and distinct last items.
        if (!std::equal(ia.begin(), ia.end() - 1, ib.begin())) continue;
        const uint32_t last_a = ia.back();
        const uint32_t last_b = ib.back();
        if (last_a >= last_b) continue;
        // One predicate per attribute.
        if (items[last_a].attr == items[last_b].attr) continue;

        std::vector<uint32_t> candidate = ia;
        candidate.push_back(last_b);

        // Prune: every (k-1)-subset must be frequent.
        bool all_subsets_frequent = true;
        for (size_t drop = 0; drop + 2 < candidate.size(); ++drop) {
          std::vector<uint32_t> subset;
          subset.reserve(candidate.size() - 1);
          for (size_t i = 0; i < candidate.size(); ++i) {
            if (i != drop) subset.push_back(candidate[i]);
          }
          if (frequent_keys.count(ItemSetKey(subset)) == 0) {
            all_subsets_frequent = false;
            break;
          }
        }
        if (!all_subsets_frequent) continue;

        // Fused AND+popcount first: infrequent candidates (the vast
        // majority at higher levels) never materialize a coverage bitmap.
        const size_t support =
            level[a].coverage.AndCount(*items[last_b].coverage);
        if (support < min_support) continue;
        Bitmap coverage = level[a].coverage & *items[last_b].coverage;
        next.push_back({std::move(candidate), std::move(coverage), support});
        out.push_back({make_pattern(next.back().items), next.back().coverage,
                       support});
        if (out.size() >= options.max_patterns) return out;
      }
    }
    level = std::move(next);
  }
  return out;
}

}  // namespace faircap
