// Predicate: A op a — the atom of grouping and intervention patterns
// (Definition 4.1). Ordered comparisons are valid on numeric attributes
// only; equality/inequality work on both.

#ifndef FAIRCAP_MINING_PREDICATE_H_
#define FAIRCAP_MINING_PREDICATE_H_

#include <string>

#include "dataframe/bitmap.h"
#include "dataframe/dataframe.h"
#include "dataframe/value.h"
#include "util/status.h"

namespace faircap {

/// Comparison operator in a predicate.
enum class CompareOp { kEq, kNe, kLt, kGt, kLe, kGe };

/// Renders e.g. "=", "!=", "<".
const char* CompareOpName(CompareOp op);

/// A single comparison `attribute op constant`.
struct Predicate {
  size_t attr = 0;  ///< column index in the DataFrame's schema
  CompareOp op = CompareOp::kEq;
  Value value;

  Predicate() = default;
  Predicate(size_t attr_in, CompareOp op_in, Value value_in)
      : attr(attr_in), op(op_in), value(std::move(value_in)) {}

  /// Checks the predicate is well-formed against `df`: attribute index in
  /// range, value type matches the column, ordered ops on numeric only.
  Status Validate(const DataFrame& df) const;

  /// True if row `row` of `df` satisfies the predicate. Null cells never
  /// match (SQL semantics).
  bool Matches(const DataFrame& df, size_t row) const;

  /// Bitmap of all matching rows. One dictionary lookup, then a tight
  /// columnar scan.
  Bitmap Evaluate(const DataFrame& df) const;

  /// Renders e.g. "Country = US".
  std::string ToString(const Schema& schema) const;

  /// Canonical ordering for pattern normalization: by attribute index,
  /// then operator, then value text.
  bool operator<(const Predicate& other) const;
  bool operator==(const Predicate& other) const;
};

}  // namespace faircap

#endif  // FAIRCAP_MINING_PREDICATE_H_
