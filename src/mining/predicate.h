// Predicate: A op a — the atom of grouping and intervention patterns
// (Definition 4.1). Ordered comparisons are valid on numeric attributes
// only; equality/inequality work on both.

#ifndef FAIRCAP_MINING_PREDICATE_H_
#define FAIRCAP_MINING_PREDICATE_H_

#include <string>

#include "dataframe/bitmap.h"
#include "dataframe/compare.h"
#include "dataframe/dataframe.h"
#include "dataframe/predicate_index.h"
#include "dataframe/value.h"
#include "util/status.h"

namespace faircap {

/// A single comparison `attribute op constant`.
struct Predicate {
  size_t attr = 0;  ///< column index in the DataFrame's schema
  CompareOp op = CompareOp::kEq;
  Value value;

  Predicate() = default;
  Predicate(size_t attr_in, CompareOp op_in, Value value_in)
      : attr(attr_in), op(op_in), value(std::move(value_in)) {}

  /// Checks the predicate is well-formed against `df`: attribute index in
  /// range, value type matches the column, ordered ops on numeric only.
  Status Validate(const DataFrame& df) const;

  /// True if row `row` of `df` satisfies the predicate. Null cells never
  /// match (SQL semantics).
  bool Matches(const DataFrame& df, size_t row) const;

  /// Bitmap of all matching rows, served from the DataFrame's shared
  /// PredicateIndex (memoized across calls and call sites).
  Bitmap Evaluate(const DataFrame& df) const;

  /// Like Evaluate but returns the cached mask itself; the reference is
  /// valid until the DataFrame is mutated — or, under a PredicateIndex
  /// memory budget with concurrent index writers, until the atom is
  /// evicted. Transient same-thread use only; holders spanning further
  /// index calls should go through PredicateIndex::AtomMaskShared.
  const Bitmap& EvaluateCached(const DataFrame& df) const;

  /// Uncached per-row reference scan — the semantics Evaluate must
  /// reproduce bit for bit (used by property tests and benchmarks).
  Bitmap EvaluateNaive(const DataFrame& df) const;

  /// The dataframe-layer view of this predicate.
  PredicateAtom Atom() const { return PredicateAtom(attr, op, value); }

  /// Renders e.g. "Country = US".
  std::string ToString(const Schema& schema) const;

  /// Canonical ordering for pattern normalization: by attribute index,
  /// then operator, then value text.
  bool operator<(const Predicate& other) const;
  bool operator==(const Predicate& other) const;
};

}  // namespace faircap

#endif  // FAIRCAP_MINING_PREDICATE_H_
