// CSV import/export. Supports RFC-4180-style quoting, explicit schemas,
// and type inference (numeric if every non-empty cell parses as a double).

#ifndef FAIRCAP_DATAFRAME_CSV_H_
#define FAIRCAP_DATAFRAME_CSV_H_

#include <string>

#include "dataframe/dataframe.h"
#include "util/result.h"

namespace faircap {

/// Options controlling CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  /// Cells equal to this literal (after trimming) become nulls, in addition
  /// to empty cells.
  std::string null_token = "NA";
};

/// Reads a CSV file whose header must match `schema` attribute names
/// exactly (same order).
Result<DataFrame> ReadCsv(const std::string& path, const Schema& schema,
                          const CsvOptions& options = {});

/// Reads a CSV file, inferring the schema from the header and cell values.
/// All inferred attributes default to AttrRole::kImmutable; callers assign
/// roles afterwards via DataFrame::SetRole.
Result<DataFrame> ReadCsvInferSchema(const std::string& path,
                                     const CsvOptions& options = {});

/// Inference pass only: the schema a CSV file would load under (numeric if
/// every non-empty cell parses as a double, categorical otherwise; roles
/// all kImmutable). Shared by the legacy loader and the streaming ingest
/// path so both agree on types.
Result<Schema> InferCsvSchema(const std::string& path,
                              const CsvOptions& options = {});

/// Parses CSV content from a string (same semantics as ReadCsv).
Result<DataFrame> ParseCsv(const std::string& content, const Schema& schema,
                           const CsvOptions& options = {});

/// Parses CSV content from a string with schema inference.
Result<DataFrame> ParseCsvInferSchema(const std::string& content,
                                      const CsvOptions& options = {});

/// Writes `df` as CSV (header + rows).
Status WriteCsv(const DataFrame& df, const std::string& path,
                const CsvOptions& options = {});

}  // namespace faircap

#endif  // FAIRCAP_DATAFRAME_CSV_H_
