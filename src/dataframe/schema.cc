#include "dataframe/schema.h"

namespace faircap {

Result<Schema> Schema::Create(std::vector<AttributeSpec> attrs) {
  Schema schema;
  size_t outcome_count = 0;
  for (size_t i = 0; i < attrs.size(); ++i) {
    const AttributeSpec& spec = attrs[i];
    if (spec.name.empty()) {
      return Status::InvalidArgument("attribute name must be non-empty");
    }
    if (schema.index_.count(spec.name) != 0) {
      return Status::AlreadyExists("duplicate attribute name '" + spec.name +
                                   "'");
    }
    if (spec.role == AttrRole::kOutcome) {
      ++outcome_count;
      if (spec.type != AttrType::kNumeric) {
        return Status::InvalidArgument(
            "outcome attribute '" + spec.name +
            "' must be numeric (binary outcomes use 0/1)");
      }
    }
    schema.index_.emplace(spec.name, i);
  }
  if (outcome_count > 1) {
    return Status::InvalidArgument("schema declares more than one outcome");
  }
  schema.attrs_ = std::move(attrs);
  return schema;
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("unknown attribute '" + name + "'");
  }
  return it->second;
}

bool Schema::Contains(const std::string& name) const {
  return index_.count(name) != 0;
}

Result<size_t> Schema::OutcomeIndex() const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].role == AttrRole::kOutcome) return i;
  }
  return Status::NotFound("schema declares no outcome attribute");
}

std::vector<size_t> Schema::IndicesWithRole(AttrRole role) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].role == role) out.push_back(i);
  }
  return out;
}

}  // namespace faircap
