#include "dataframe/discretize.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace faircap {

namespace {

std::string IntervalLabel(double lo, double hi, bool first, bool last,
                          int precision) {
  char buf[96];
  if (first && last) {
    return "all";
  }
  if (first) {
    std::snprintf(buf, sizeof(buf), "<%.*g", precision, hi);
  } else if (last) {
    std::snprintf(buf, sizeof(buf), ">=%.*g", precision, lo);
  } else {
    std::snprintf(buf, sizeof(buf), "[%.*g,%.*g)", precision, lo, precision,
                  hi);
  }
  return buf;
}

}  // namespace

Result<DataFrame> DiscretizeColumn(const DataFrame& df,
                                   const std::string& name,
                                   const DiscretizeOptions& options) {
  FAIRCAP_ASSIGN_OR_RETURN(const size_t attr, df.schema().IndexOf(name));
  const AttributeSpec& spec = df.schema().attribute(attr);
  if (spec.type != AttrType::kNumeric) {
    return Status::InvalidArgument("attribute '" + name + "' is not numeric");
  }
  if (spec.role == AttrRole::kOutcome) {
    return Status::InvalidArgument("refusing to discretize the outcome");
  }
  if (options.num_bins < 1) {
    return Status::InvalidArgument("num_bins must be >= 1");
  }

  const Column& col = df.column(attr);
  std::vector<double> values;
  values.reserve(df.num_rows());
  for (size_t r = 0; r < df.num_rows(); ++r) {
    if (!col.IsNull(r)) values.push_back(col.numeric(r));
  }

  // Bin edges (ascending, deduplicated).
  std::vector<double> edges;
  if (!values.empty()) {
    if (options.strategy == BinningStrategy::kEqualFrequency) {
      std::sort(values.begin(), values.end());
      for (size_t b = 1; b < options.num_bins; ++b) {
        edges.push_back(values[values.size() * b / options.num_bins]);
      }
    } else {
      const auto [lo_it, hi_it] =
          std::minmax_element(values.begin(), values.end());
      const double lo = *lo_it, hi = *hi_it;
      for (size_t b = 1; b < options.num_bins; ++b) {
        edges.push_back(lo + (hi - lo) * static_cast<double>(b) /
                                 static_cast<double>(options.num_bins));
      }
    }
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    // An edge at (or below) the minimum creates an empty first bin —
    // degenerate (e.g. constant) columns collapse to fewer bins instead.
    const double min_value =
        *std::min_element(values.begin(), values.end());
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [min_value](double e) {
                                 return e <= min_value;
                               }),
                edges.end());
  }

  // Rebuild the frame with the column replaced.
  std::vector<AttributeSpec> specs = df.schema().attributes();
  specs[attr].type = AttrType::kCategorical;
  FAIRCAP_ASSIGN_OR_RETURN(Schema new_schema, Schema::Create(std::move(specs)));
  DataFrame out = DataFrame::Create(std::move(new_schema));
  out.Reserve(df.num_rows());

  std::vector<Value> row(df.num_columns());
  for (size_t r = 0; r < df.num_rows(); ++r) {
    for (size_t c = 0; c < df.num_columns(); ++c) {
      if (c != attr) {
        row[c] = df.GetValue(r, c);
        continue;
      }
      if (col.IsNull(r)) {
        row[c] = Value::Null();
        continue;
      }
      const double v = col.numeric(r);
      const size_t bin = static_cast<size_t>(
          std::upper_bound(edges.begin(), edges.end(), v) - edges.begin());
      const double lo = bin == 0 ? -HUGE_VAL : edges[bin - 1];
      const double hi = bin == edges.size() ? HUGE_VAL : edges[bin];
      row[c] = Value(IntervalLabel(lo, hi, bin == 0, bin == edges.size(),
                                   options.label_precision));
    }
    FAIRCAP_RETURN_NOT_OK(out.AppendRow(row));
  }
  return out;
}

}  // namespace faircap
