// DataFrame: the single-relation database instance D from Section 4 of the
// paper. Columnar layout; row selections are Bitmaps so the mining and
// selection algorithms compose with cheap set algebra.

#ifndef FAIRCAP_DATAFRAME_DATAFRAME_H_
#define FAIRCAP_DATAFRAME_DATAFRAME_H_

#include <memory>
#include <string>
#include <vector>

#include "dataframe/bitmap.h"
#include "dataframe/column.h"
#include "dataframe/schema.h"
#include "dataframe/value.h"
#include "util/random.h"
#include "util/result.h"

namespace faircap {

class PredicateIndex;  // dataframe/predicate_index.h

/// In-memory single-relation table.
class DataFrame {
 public:
  DataFrame();
  ~DataFrame();
  DataFrame(const DataFrame& other);             ///< starts with a cold index
  DataFrame& operator=(const DataFrame& other);  ///< starts with a cold index
  DataFrame(DataFrame&& other) noexcept;         ///< keeps the warm index
  DataFrame& operator=(DataFrame&& other) noexcept;

  /// Creates an empty table with the given schema.
  static DataFrame Create(Schema schema);

  /// Assembles a table wholesale from pre-built columns (the streaming
  /// ingest path: parse straight into columnar storage, then adopt it here
  /// with no per-row append). Column types and count must match the
  /// schema; all columns must have equal length. The table starts with a
  /// cold index; ingest warm-starts it afterwards.
  static Result<DataFrame> FromColumns(Schema schema,
                                       std::vector<Column> columns);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  /// Mutable access invalidates the predicate index (values may change).
  Column& column_mutable(size_t i) {
    InvalidateIndex();
    return columns_[i];
  }

  /// The shared predicate-evaluation engine over this table. Pattern and
  /// predicate evaluation route through it; masks are memoized until the
  /// next row mutation. Thread-safe for concurrent evaluation.
  PredicateIndex& predicate_index() const;

  /// Column by attribute name.
  Result<const Column*> ColumnByName(const std::string& name) const;

  /// Appends one row; `values` must match the schema arity and types.
  Status AppendRow(const std::vector<Value>& values);

  /// Appends many rows at once: validates every row first (a failure
  /// leaves the table unchanged), reserves all column storage in one
  /// amortized step, and invalidates the index once instead of per row.
  Status AppendRows(const std::vector<std::vector<Value>>& rows);

  /// Appends all rows of `delta` (same schema required: attribute names,
  /// types, and roles must match). Dictionary-encoded columns extend in
  /// place via first-appearance merge, so resident codes never change and
  /// new categories get the codes a cold ingest of the concatenated data
  /// would assign. Unlike the row-mutation paths this does NOT drop the
  /// predicate index: cached masks are notified of the append and extend
  /// themselves lazily by whole 64-row words on next touch.
  Status AppendFrame(const DataFrame& delta);

  /// Monotonic mutation counter: bumped on every row/value mutation,
  /// including appends. Derived caches (index masks, engines, partitions)
  /// record the generation they were built against so staleness is
  /// checkable.
  uint64_t generation() const { return generation_; }

  /// Cell accessor (row-oriented; for tests and display).
  Value GetValue(size_t row, size_t col) const {
    return columns_[col].GetValue(row);
  }

  /// Bitmap of all rows (all bits set).
  Bitmap AllRows() const { return Bitmap(num_rows_, /*value=*/true); }

  /// Materializes the subset of rows selected by `mask`, preserving order.
  DataFrame Take(const Bitmap& mask) const;

  /// Materializes the given rows, in order.
  DataFrame TakeRows(const std::vector<uint32_t>& rows) const;

  /// Uniform sample without replacement of ~`fraction` of the rows.
  DataFrame SampleFraction(double fraction, Rng* rng) const;

  /// Mean of numeric column `col` over rows in `mask`, skipping nulls.
  /// Returns NaN when the selection has no non-null values.
  double Mean(size_t col, const Bitmap& mask) const;

  /// Mean over all rows.
  double Mean(size_t col) const;

  /// Re-assigns the causal role of attribute `name` (used by the attribute-
  /// sweep experiments to toggle attributes in and out of mining).
  Status SetRole(const std::string& name, AttrRole role);

  void Reserve(size_t n);

 private:
  /// Drops all cached predicate masks (row data changed).
  void InvalidateIndex();

  /// Shared row-validation step for the append paths.
  Status ValidateRow(const std::vector<Value>& values) const;

  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
  uint64_t generation_ = 0;
  /// Always non-null; mutable so const evaluation paths can memoize.
  mutable std::unique_ptr<PredicateIndex> index_;
};

}  // namespace faircap

#endif  // FAIRCAP_DATAFRAME_DATAFRAME_H_
