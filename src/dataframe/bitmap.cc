#include "dataframe/bitmap.h"

#include <cassert>

#include "util/simd/simd.h"

namespace faircap {

Bitmap::Bitmap(size_t num_bits, bool value)
    : num_bits_(num_bits),
      words_((num_bits + 63) / 64, value ? ~0ULL : 0ULL) {
  if (value) ClearPadding();
}

void Bitmap::Set(size_t i) {
  assert(i < num_bits_);
  words_[i / 64] |= (1ULL << (i % 64));
}

void Bitmap::Clear(size_t i) {
  assert(i < num_bits_);
  words_[i / 64] &= ~(1ULL << (i % 64));
}

bool Bitmap::Get(size_t i) const {
  assert(i < num_bits_);
  return (words_[i / 64] >> (i % 64)) & 1ULL;
}

void Bitmap::Resize(size_t new_bits) {
  words_.resize((new_bits + 63) / 64, 0ULL);
  num_bits_ = new_bits;
  // Shrinking may leave set bits past the new size in the final word.
  ClearPadding();
}

size_t Bitmap::Count() const {
  return simd::ActiveKernels().popcount(words_.data(), words_.size());
}

size_t Bitmap::AndCount(const Bitmap& other) const {
  assert(num_bits_ == other.num_bits_);
  return simd::ActiveKernels().and_count(words_.data(), other.words_.data(),
                                         words_.size());
}

size_t Bitmap::AndNotCount(const Bitmap& other) const {
  assert(num_bits_ == other.num_bits_);
  return simd::ActiveKernels().andnot_count(words_.data(), other.words_.data(),
                                            words_.size());
}

Bitmap& Bitmap::operator&=(const Bitmap& other) {
  assert(num_bits_ == other.num_bits_);
  simd::ActiveKernels().and_inplace(words_.data(), other.words_.data(),
                                    words_.size());
  return *this;
}

Bitmap& Bitmap::operator|=(const Bitmap& other) {
  assert(num_bits_ == other.num_bits_);
  simd::ActiveKernels().or_inplace(words_.data(), other.words_.data(),
                                   words_.size());
  return *this;
}

Bitmap& Bitmap::AndNot(const Bitmap& other) {
  assert(num_bits_ == other.num_bits_);
  simd::ActiveKernels().andnot_inplace(words_.data(), other.words_.data(),
                                       words_.size());
  return *this;
}

Bitmap Bitmap::operator&(const Bitmap& other) const {
  Bitmap out = *this;
  out &= other;
  return out;
}

Bitmap Bitmap::operator|(const Bitmap& other) const {
  Bitmap out = *this;
  out |= other;
  return out;
}

void Bitmap::OrWordsAt(size_t word_offset, const uint64_t* src,
                       size_t num_words) {
  assert(word_offset + num_words <= words_.size());
  simd::ActiveKernels().or_inplace(words_.data() + word_offset, src,
                                   num_words);
  // Only the merge that owns the final word may touch padding: a
  // concurrent merger of an earlier word range must never read-modify-
  // write words it does not own.
  if (word_offset + num_words == words_.size()) ClearPadding();
}

Bitmap Bitmap::operator~() const {
  Bitmap out = *this;
  for (auto& w : out.words_) w = ~w;
  out.ClearPadding();
  return out;
}

bool Bitmap::operator==(const Bitmap& other) const {
  return num_bits_ == other.num_bits_ && words_ == other.words_;
}

std::vector<uint32_t> Bitmap::ToIndices() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  ForEach([&out](size_t i) { out.push_back(static_cast<uint32_t>(i)); });
  return out;
}

void Bitmap::ClearPadding() {
  const size_t tail = num_bits_ % 64;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

}  // namespace faircap
