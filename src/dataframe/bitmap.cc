#include "dataframe/bitmap.h"

#include <cassert>

namespace faircap {

Bitmap::Bitmap(size_t num_bits, bool value)
    : num_bits_(num_bits),
      words_((num_bits + 63) / 64, value ? ~0ULL : 0ULL) {
  if (value) ClearPadding();
}

void Bitmap::Set(size_t i) {
  assert(i < num_bits_);
  words_[i / 64] |= (1ULL << (i % 64));
}

void Bitmap::Clear(size_t i) {
  assert(i < num_bits_);
  words_[i / 64] &= ~(1ULL << (i % 64));
}

bool Bitmap::Get(size_t i) const {
  assert(i < num_bits_);
  return (words_[i / 64] >> (i % 64)) & 1ULL;
}

size_t Bitmap::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
  return n;
}

size_t Bitmap::AndCount(const Bitmap& other) const {
  assert(num_bits_ == other.num_bits_);
  size_t n = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    n += static_cast<size_t>(__builtin_popcountll(words_[i] & other.words_[i]));
  }
  return n;
}

size_t Bitmap::AndNotCount(const Bitmap& other) const {
  assert(num_bits_ == other.num_bits_);
  size_t n = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    n += static_cast<size_t>(
        __builtin_popcountll(words_[i] & ~other.words_[i]));
  }
  return n;
}

Bitmap& Bitmap::operator&=(const Bitmap& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

Bitmap& Bitmap::operator|=(const Bitmap& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

Bitmap& Bitmap::AndNot(const Bitmap& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

Bitmap Bitmap::operator&(const Bitmap& other) const {
  Bitmap out = *this;
  out &= other;
  return out;
}

Bitmap Bitmap::operator|(const Bitmap& other) const {
  Bitmap out = *this;
  out |= other;
  return out;
}

void Bitmap::OrWordsAt(size_t word_offset, const uint64_t* src,
                       size_t num_words) {
  assert(word_offset + num_words <= words_.size());
  for (size_t i = 0; i < num_words; ++i) words_[word_offset + i] |= src[i];
  // Only the merge that owns the final word may touch padding: a
  // concurrent merger of an earlier word range must never read-modify-
  // write words it does not own.
  if (word_offset + num_words == words_.size()) ClearPadding();
}

Bitmap Bitmap::operator~() const {
  Bitmap out = *this;
  for (auto& w : out.words_) w = ~w;
  out.ClearPadding();
  return out;
}

bool Bitmap::operator==(const Bitmap& other) const {
  return num_bits_ == other.num_bits_ && words_ == other.words_;
}

std::vector<uint32_t> Bitmap::ToIndices() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  ForEach([&out](size_t i) { out.push_back(static_cast<uint32_t>(i)); });
  return out;
}

void Bitmap::ClearPadding() {
  const size_t tail = num_bits_ % 64;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

}  // namespace faircap
