#include "dataframe/compare.h"

namespace faircap {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kGt: return ">";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

}  // namespace faircap
