// Schema: attribute names, types (categorical vs numeric), and causal
// roles (immutable / mutable / outcome), per Section 4.2 of the paper.

#ifndef FAIRCAP_DATAFRAME_SCHEMA_H_
#define FAIRCAP_DATAFRAME_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace faircap {

/// Storage/semantic type of an attribute.
enum class AttrType {
  kCategorical,  ///< dictionary-encoded strings
  kNumeric,      ///< doubles
};

/// Causal role of an attribute (Section 4.2: M, I, and the outcome O).
enum class AttrRole {
  kImmutable,  ///< may appear in grouping patterns only
  kMutable,    ///< may appear in intervention patterns only
  kOutcome,    ///< the target variable O
  kIgnored,    ///< excluded from mining (e.g. row ids)
};

/// Metadata for one attribute.
struct AttributeSpec {
  std::string name;
  AttrType type = AttrType::kCategorical;
  AttrRole role = AttrRole::kImmutable;
};

/// Ordered attribute list with name lookup. Validates that at most one
/// attribute is the outcome.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; fails on duplicate names or multiple outcomes.
  static Result<Schema> Create(std::vector<AttributeSpec> attrs);

  size_t num_attributes() const { return attrs_.size(); }
  const AttributeSpec& attribute(size_t i) const { return attrs_[i]; }
  const std::vector<AttributeSpec>& attributes() const { return attrs_; }

  /// Index of the attribute named `name`, or error.
  Result<size_t> IndexOf(const std::string& name) const;

  /// True if an attribute with this name exists.
  bool Contains(const std::string& name) const;

  /// Index of the outcome attribute, or error if none is declared.
  Result<size_t> OutcomeIndex() const;

  /// Indices of all attributes with the given role, in schema order.
  std::vector<size_t> IndicesWithRole(AttrRole role) const;

 private:
  std::vector<AttributeSpec> attrs_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace faircap

#endif  // FAIRCAP_DATAFRAME_SCHEMA_H_
