#include "dataframe/predicate_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "dataframe/dataframe.h"
#include "util/logging.h"
#include "util/obs/metrics.h"
#include "util/simd/simd.h"

namespace faircap {

namespace {

// Global-registry mirrors of the per-instance cache stats: incremented at
// the same sites, under the same mutex, so the run report's index_cache
// section and GetStats() can never disagree about what happened. The
// counters aggregate across every index instance in the process; the byte
// gauges track the most recently mutated instance (one live table in the
// CLI, so in practice: the table's index).
struct IndexCacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Counter& atom_evictions;
  obs::Counter& warm_atom_masks;
  obs::Gauge& atom_bytes;
  obs::Gauge& conjunction_bytes;
  obs::Gauge& numeric_order_bytes;
  // Append-path outcomes: stale entries extended in place (tail-word
  // rescan / order merge) vs. entries built from scratch after an append.
  obs::Counter& masks_extended;
  obs::Counter& masks_rebuilt;
  obs::Counter& orders_merged;
};

IndexCacheMetrics& CacheMetrics() {
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  static IndexCacheMetrics* metrics = new IndexCacheMetrics{
      r.GetCounter("index_cache.hits"),
      r.GetCounter("index_cache.misses"),
      r.GetCounter("index_cache.evictions"),
      r.GetCounter("index_cache.atom_evictions"),
      r.GetCounter("index_cache.warm_atom_masks"),
      r.GetGauge("index_cache.atom_bytes"),
      r.GetGauge("index_cache.conjunction_bytes"),
      r.GetGauge("index_cache.numeric_order_bytes"),
      r.GetCounter("append.masks_extended"),
      r.GetCounter("append.masks_rebuilt"),
      r.GetCounter("append.orders_merged"),
  };
  return *metrics;
}

}  // namespace

namespace {

// Canonical byte key for an atom. Doubles are keyed by bit pattern so the
// key is exact (distinct NaN payloads or signed zeros may alias to
// separate, individually-correct entries).
std::string AtomKey(size_t attr, CompareOp op, const Value& value) {
  std::string key;
  key.reserve(16 + (value.is_string() ? value.str().size() : 8));
  key += std::to_string(attr);
  key += static_cast<char>('0' + static_cast<int>(op));
  if (value.is_string()) {
    key += 's';
    key += value.str();
  } else if (value.is_numeric()) {
    key += 'n';
    const double v = value.numeric();
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    key.append(reinterpret_cast<const char*>(&bits), sizeof(bits));
  } else {
    key += '0';
  }
  return key;
}

std::string ConjunctionKey(const std::vector<uint32_t>& ids) {
  std::string key;
  key.reserve(ids.size() * sizeof(uint32_t));
  for (uint32_t id : ids) {
    key.append(reinterpret_cast<const char*>(&id), sizeof(id));
  }
  return key;
}

// Bytes a mask contributes to the budget (its word storage).
size_t BitmapBytes(const Bitmap& mask) {
  return ((mask.size() + 63) / 64) * sizeof(uint64_t);
}

// Non-owning view of the all-rows mask: it is never evicted, so a
// shared_ptr over it only needs to satisfy the interface, not own. (Atom
// masks ARE evictable under a budget and use real shared ownership.)
std::shared_ptr<const Bitmap> NonOwning(const Bitmap* mask) {
  return std::shared_ptr<const Bitmap>(std::shared_ptr<void>(), mask);
}

}  // namespace

namespace {

// The numeric compare kernels mirror CompareOp one-to-one (util cannot
// include the dataframe headers, hence the parallel enum).
simd::Cmp SimdCmpOf(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return simd::Cmp::kEq;
    case CompareOp::kNe: return simd::Cmp::kNe;
    case CompareOp::kLt: return simd::Cmp::kLt;
    case CompareOp::kLe: return simd::Cmp::kLe;
    case CompareOp::kGt: return simd::Cmp::kGt;
    case CompareOp::kGe: return simd::Cmp::kGe;
  }
  return simd::Cmp::kEq;
}

}  // namespace

void PredicateIndex::ScanInto(const DataFrame& df, size_t attr, CompareOp op,
                              const Value& value, size_t word_begin,
                              Bitmap* out) {
  const Column& col = df.column(attr);
  const size_t row_begin = word_begin * 64;
  if (row_begin >= df.num_rows()) return;
  const size_t n = df.num_rows() - row_begin;
  if (col.type() == AttrType::kCategorical) {
    // Word-batched compare scan through the SIMD kernel layer: 64 codes
    // per mask word. Nulls (kNullCode) never match under any operator.
    const int32_t* codes = col.codes_data() + row_begin;
    const Result<int32_t> code_result = col.CodeOf(value.str());
    // A category absent from the dictionary matches nothing under kEq
    // and everything non-null under kNe; fold both in-dictionary and
    // out-of-dictionary kNe into one "non-null and != code" compare by
    // using a code no row can carry.
    if (!code_result.ok() && op != CompareOp::kNe) {
      // kEq of an unknown category: no row matches; the tail words of a
      // freshly resized/constructed mask are already zero, but an
      // extension may be overwriting a previously nonzero boundary word.
      std::memset(out->mutable_words() + word_begin, 0,
                  (out->num_words() - word_begin) * sizeof(uint64_t));
      return;
    }
    const int32_t code = code_result.ok() ? *code_result : -2;
    if (op == CompareOp::kEq) {
      simd::ActiveKernels().mask_codes_eq(codes, n, code,
                                          out->mutable_words() + word_begin);
    } else {
      simd::ActiveKernels().mask_codes_ne(codes, n, Column::kNullCode, code,
                                          out->mutable_words() + word_begin);
    }
    return;
  }
  // Numeric compare scan, 64 rows per mask word. NaN cells are nulls and
  // never match — not even under kNe, where IEEE comparison alone would
  // admit them (the categorical convention: null is absent from every
  // selection).
  simd::ActiveKernels().mask_numeric_cmp(col.numeric_data() + row_begin, n,
                                         SimdCmpOf(op), value.numeric(),
                                         out->mutable_words() + word_begin);
}

Bitmap PredicateIndex::Scan(const DataFrame& df, size_t attr, CompareOp op,
                            const Value& value) {
  Bitmap out(df.num_rows());
  if (df.num_rows() == 0) return out;
  ScanInto(df, attr, op, value, /*word_begin=*/0, &out);
  return out;
}

std::shared_ptr<const PredicateIndex::NumericOrder>
PredicateIndex::NumericOrderFor(const DataFrame& df, size_t attr) const {
  std::shared_ptr<const NumericOrder> stale;
  {
    MutexLock lock(mu_);
    const auto it = numeric_orders_.find(attr);
    if (it != numeric_orders_.end()) {
      if (it->second->rows_covered == df.num_rows()) return it->second;
      // Rows were appended since this order was built: merge the delta's
      // sorted rows into the cached order instead of re-sorting everything.
      stale = it->second;
    }
  }
  // Sort (or merge) outside the lock; a racing duplicate build is
  // identical and the first insertion wins.
  auto order = std::make_shared<NumericOrder>();
  const Column& col = df.column(attr);
  const double* values = col.numeric_data();
  const size_t row_begin = stale != nullptr ? stale->rows_covered : 0;
  std::vector<uint32_t> delta_rows;
  delta_rows.reserve(df.num_rows() - row_begin);
  for (size_t r = row_begin; r < df.num_rows(); ++r) {
    if (!std::isnan(values[r])) {
      delta_rows.push_back(static_cast<uint32_t>(r));
    }
  }
  const auto by_value_then_row = [values](uint32_t a, uint32_t b) {
    return values[a] < values[b] || (values[a] == values[b] && a < b);
  };
  std::sort(delta_rows.begin(), delta_rows.end(), by_value_then_row);
  order->rows.reserve((stale != nullptr ? stale->rows.size() : 0) +
                      delta_rows.size());
  if (stale != nullptr) {
    // (value, row) is a total strict order and every delta row id exceeds
    // every resident row id, so the merge is deterministic and equals a
    // cold full sort over the concatenated rows.
    std::merge(stale->rows.begin(), stale->rows.end(), delta_rows.begin(),
               delta_rows.end(), std::back_inserter(order->rows),
               by_value_then_row);
  } else {
    order->rows = std::move(delta_rows);
  }
  order->values.reserve(order->rows.size());
  for (const uint32_t r : order->rows) order->values.push_back(values[r]);
  order->rows_covered = df.num_rows();
  MutexLock lock(mu_);
  auto& slot = numeric_orders_[attr];
  if (slot != nullptr && slot->rows_covered == df.num_rows()) {
    return slot;  // a racing builder landed first; keep its order canonical
  }
  if (slot != nullptr) {
    numeric_order_bytes_ -=
        slot->rows.size() * (sizeof(uint32_t) + sizeof(double));
    ++orders_merged_;
    CacheMetrics().orders_merged.Increment();
  }
  slot = std::move(order);
  // Keep a live reference before enforcing the budget: under a tiny
  // budget the enforcement may evict this very order from the map, and
  // the caller's scan must still be served from this build.
  std::shared_ptr<const NumericOrder> result = slot;
  numeric_order_bytes_ +=
      result->rows.size() * (sizeof(uint32_t) + sizeof(double));
  EnforceBudgetLocked();
  return result;
}

Bitmap PredicateIndex::ScanNumericRange(const DataFrame& df, size_t attr,
                                        CompareOp op, double rhs) const {
  Bitmap out(df.num_rows());
  // Comparisons with a NaN threshold select nothing (and lower_bound on
  // NaN would be meaningless); NaN *cells* are excluded from the order.
  if (std::isnan(rhs)) return out;
  const std::shared_ptr<const NumericOrder> order = NumericOrderFor(df, attr);
  const std::vector<double>& values = order->values;
  size_t lo = 0;
  size_t hi = values.size();
  switch (op) {
    case CompareOp::kLt:
      hi = static_cast<size_t>(
          std::lower_bound(values.begin(), values.end(), rhs) -
          values.begin());
      break;
    case CompareOp::kLe:
      hi = static_cast<size_t>(
          std::upper_bound(values.begin(), values.end(), rhs) -
          values.begin());
      break;
    case CompareOp::kGe:
      lo = static_cast<size_t>(
          std::lower_bound(values.begin(), values.end(), rhs) -
          values.begin());
      break;
    case CompareOp::kGt:
      lo = static_cast<size_t>(
          std::upper_bound(values.begin(), values.end(), rhs) -
          values.begin());
      break;
    default:
      return Scan(df, attr, op, Value(rhs));  // kEq/kNe: not a range
  }
  for (size_t i = lo; i < hi; ++i) out.Set(order->rows[i]);
  return out;
}

std::vector<Bitmap> PredicateIndex::BuildCategoryMasks(const DataFrame& df,
                                                       size_t attr) {
  const Column& col = df.column(attr);
  std::vector<Bitmap> masks(col.num_categories());
  for (Bitmap& m : masks) m = Bitmap(df.num_rows());
  for (size_t row = 0; row < df.num_rows(); ++row) {
    const int32_t c = col.code(row);
    if (c != Column::kNullCode) masks[static_cast<size_t>(c)].Set(row);
  }
  return masks;
}

void PredicateIndex::InstallAtomMaskLocked(uint32_t id,
                                           std::shared_ptr<Bitmap> mask) const {
  AtomEntry& entry = atom_masks_[id];
  atom_bytes_ += BitmapBytes(*mask);
  entry.mask = std::move(mask);
  entry.gen = gen_;
  atom_lru_.push_front(id);
  entry.lru_pos = atom_lru_.begin();
}

void PredicateIndex::TouchAtomLocked(uint32_t id) const {
  AtomEntry& entry = atom_masks_[id];
  if (entry.mask != nullptr) {
    atom_lru_.splice(atom_lru_.begin(), atom_lru_, entry.lru_pos);
  }
}

uint32_t PredicateIndex::EnsureAtom(const DataFrame& df, size_t attr,
                                    CompareOp op, const Value& value) const {
  const std::string key = AtomKey(attr, op, value);
  const Column& col = df.column(attr);
  const bool batch = col.type() == AttrType::kCategorical &&
                     op == CompareOp::kEq && value.is_string() &&
                     col.num_categories() <= kBatchBuildMaxCategories &&
                     col.CodeOf(value.str()).ok();
  // Batch builds cover every sibling category at once, so racing requests
  // for any category of the column coordinate on one column-level token.
  const std::string build_token =
      batch ? "col:" + std::to_string(attr) : key;

  // Set when a cached mask exists but covers fewer rows than df (rows were
  // appended since it was scanned): the build below copies its resident
  // words and rescans only the tail, instead of the whole column.
  std::shared_ptr<const Bitmap> extend_from;
  {
    MutexLock lock(mu_);
    for (;;) {
      const auto it = atom_ids_.find(key);
      // An interned id whose mask was budget-evicted needs a rescan: the
      // id (and thus every conjunction key embedding it) stays valid.
      if (it != atom_ids_.end() &&
          atom_masks_[it->second].mask != nullptr) {
        if (atom_masks_[it->second].mask->size() == df.num_rows()) {
          ++hits_;
          CacheMetrics().hits.Increment();
          TouchAtomLocked(it->second);
          atom_masks_[it->second].gen = gen_;
          return it->second;
        }
        // Stale after an append: extend lazily. Extension coordinates on
        // the per-atom token (not the column batch token) — each touched
        // sibling extends on its own first touch.
        if (in_flight_.count(key) == 0) {
          extend_from = atom_masks_[it->second].mask;
          in_flight_.insert(key);
          break;  // this thread extends
        }
        build_done_.Wait(mu_);
        continue;
      }
      if (in_flight_.count(build_token) == 0) {
        in_flight_.insert(build_token);
        break;  // this thread builds
      }
      build_done_.Wait(mu_);  // another thread is scanning this atom/column
    }
  }
  const std::string& flight_token =
      extend_from != nullptr ? key : build_token;

  // Scan outside the lock; concurrent evaluation of other atoms proceeds.
  const bool range = col.type() == AttrType::kNumeric && value.is_numeric() &&
                     (op == CompareOp::kLt || op == CompareOp::kLe ||
                      op == CompareOp::kGt || op == CompareOp::kGe);
  std::vector<Bitmap> masks;
  try {
    if (extend_from != nullptr) {
      // Copy resident words, then recompute only tail words — whole-word
      // extension. The boundary word is recomputed in full: predicates
      // are row-local, so its resident bits come out identical to the
      // copied ones and the result is bit-identical to a cold full scan.
      Bitmap ext = *extend_from;
      const size_t word_begin = extend_from->size() / 64;
      ext.Resize(df.num_rows());
      ScanInto(df, attr, op, value, word_begin, &ext);
      masks.push_back(std::move(ext));
    } else if (batch) {
      // Materialize every category's equality mask in one columnar pass:
      // Apriori's level-1 items, lattice atoms, and treatment masks all
      // ask for sibling categories of the same column.
      masks = BuildCategoryMasks(df, attr);
    } else if (range) {
      // Numeric range atoms come from the cached sorted order: two binary
      // searches instead of a full per-row double scan per threshold.
      masks.push_back(ScanNumericRange(df, attr, op, value.numeric()));
    } else {
      masks.push_back(Scan(df, attr, op, value));
    }
  } catch (...) {
    // Release waiters before propagating (e.g. a type-mismatched Value).
    MutexLock lock(mu_);
    in_flight_.erase(flight_token);
    build_done_.NotifyAll();
    throw;
  }

  if (extend_from != nullptr) {
    MutexLock lock(mu_);
    const auto it = atom_ids_.find(key);
    const uint32_t id = it->second;  // interned keys never disappear pre-Clear
    AtomEntry& entry = atom_masks_[id];
    if (entry.mask == nullptr || entry.mask->size() != df.num_rows()) {
      if (entry.mask != nullptr) {
        // Replace the stale mask with a fresh shared_ptr: handles held by
        // concurrent readers keep the old (resident-rows) object alive.
        atom_bytes_ -= BitmapBytes(*entry.mask);
        atom_lru_.erase(entry.lru_pos);
        entry.mask.reset();
      }
      InstallAtomMaskLocked(id, std::make_shared<Bitmap>(std::move(masks[0])));
      ++atoms_extended_;
      CacheMetrics().masks_extended.Increment();
    }
    entry.gen = gen_;
    TouchAtomLocked(id);
    in_flight_.erase(key);
    build_done_.NotifyAll();
    EnforceBudgetLocked();
    return id;
  }

  MutexLock lock(mu_);
  ++misses_;
  CacheMetrics().misses.Increment();
  if (append_mode_) {
    ++rebuilt_after_append_;
    CacheMetrics().masks_rebuilt.Increment();
  }
  uint32_t result_id = 0;
  for (size_t i = 0; i < masks.size(); ++i) {
    const std::string k =
        batch ? AtomKey(attr, op,
                        Value(col.CategoryName(static_cast<int32_t>(i))))
              : key;
    const auto it = atom_ids_.find(k);
    uint32_t id;
    if (it != atom_ids_.end()) {
      id = it->second;  // a sibling single-scan got there first; keep its id
      if (atom_masks_[id].mask == nullptr) {
        InstallAtomMaskLocked(id,
                              std::make_shared<Bitmap>(std::move(masks[i])));
      }
    } else {
      id = static_cast<uint32_t>(atom_masks_.size());
      atom_masks_.emplace_back();
      atom_ids_.emplace(k, id);
      InstallAtomMaskLocked(id,
                            std::make_shared<Bitmap>(std::move(masks[i])));
    }
    if (k == key) result_id = id;
  }
  // Keep the requested atom warmest so budget enforcement (atoms are the
  // LRU-last tier) cannot evict the mask the caller is about to read.
  TouchAtomLocked(result_id);
  in_flight_.erase(build_token);
  build_done_.NotifyAll();
  EnforceBudgetLocked();
  return result_id;
}

std::pair<uint32_t, std::shared_ptr<const Bitmap>>
PredicateIndex::EnsureAtomPinned(const DataFrame& df, size_t attr,
                                 CompareOp op, const Value& value) const {
  for (;;) {
    const uint32_t id = EnsureAtom(df, attr, op, value);
    MutexLock lock(mu_);
    // A concurrent insertion may have evicted the atom between EnsureAtom
    // and here; rebuild in that (rare) case. EnsureAtom leaves the atom
    // most-recently-used, so single-threaded this never loops.
    if (atom_masks_[id].mask != nullptr &&
        atom_masks_[id].mask->size() == df.num_rows()) {
      // Serve-point guard: a stale entry (wrong row coverage or built
      // against an older index generation) must never be handed out.
      FAIRCAP_CHECK(atom_masks_[id].gen == gen_);
      return {id, atom_masks_[id].mask};
    }
  }
}

const Bitmap& PredicateIndex::AtomMask(const DataFrame& df, size_t attr,
                                       CompareOp op,
                                       const Value& value) const {
  // The raw reference is safe for transient same-thread use; holders that
  // span further index calls under a budget must use AtomMaskShared.
  return *EnsureAtomPinned(df, attr, op, value).second;
}

std::shared_ptr<const Bitmap> PredicateIndex::AtomMaskShared(
    const DataFrame& df, size_t attr, CompareOp op,
    const Value& value) const {
  return EnsureAtomPinned(df, attr, op, value).second;
}

const Bitmap& PredicateIndex::AllRowsMask(const DataFrame& df) const {
  MutexLock lock(mu_);
  if (all_rows_ == nullptr ||
      all_rows_->size() != df.num_rows()) {
    all_rows_ = std::make_unique<Bitmap>(df.num_rows(), /*value=*/true);
  }
  return *all_rows_;
}

const Bitmap& PredicateIndex::ConjunctionMask(
    const DataFrame& df, const std::vector<PredicateAtom>& atoms) const {
  // The map (or the atom table) retains ownership of the referent; the
  // reference is stable until Clear(), or until eviction under a budget.
  return *ConjunctionMaskShared(df, atoms);
}

std::shared_ptr<const Bitmap> PredicateIndex::ConjunctionMaskShared(
    const DataFrame& df, const std::vector<PredicateAtom>& atoms) const {
  if (atoms.empty()) return NonOwning(&AllRowsMask(df));

  // Pin each atom's mask while interning: the shared_ptr copies stay
  // valid even if a later EnsureAtom call budget-evicts an atom from the
  // cache, so composition never has to re-request (and can't livelock
  // when the budget is smaller than the atom working set).
  std::vector<std::pair<uint32_t, std::shared_ptr<const Bitmap>>> pinned;
  pinned.reserve(atoms.size());
  for (const PredicateAtom& atom : atoms) {
    pinned.push_back(EnsureAtomPinned(df, atom.attr, atom.op, atom.value));
  }
  std::sort(pinned.begin(), pinned.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  pinned.erase(
      std::unique(pinned.begin(), pinned.end(),
                  [](const auto& a, const auto& b) {
                    return a.first == b.first;
                  }),
      pinned.end());

  std::vector<uint32_t> ids;
  ids.reserve(pinned.size());
  for (const auto& [id, mask] : pinned) ids.push_back(id);
  const std::string key = ConjunctionKey(ids);
  // Set when a cached conjunction covers fewer rows than df: the compose
  // below copies its resident words and ANDs the (already current) atom
  // masks over only the tail words.
  std::shared_ptr<const Bitmap> stale_conj;
  {
    MutexLock lock(mu_);
    if (pinned.size() == 1) {
      // A one-atom conjunction IS the atom mask; no separate entry.
      ++hits_;
      CacheMetrics().hits.Increment();
      TouchAtomLocked(ids[0]);
      return pinned[0].second;
    }
    const auto it = conjunctions_.find(key);
    if (it != conjunctions_.end()) {
      if (it->second.mask->size() == df.num_rows()) {
        // Serve-point guard: never hand out a mask with stale coverage.
        FAIRCAP_CHECK(it->second.mask->size() == df.num_rows());
        ++hits_;
        CacheMetrics().hits.Increment();
        it->second.gen = gen_;
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        return it->second.mask;
      }
      stale_conj = it->second.mask;
    }
  }

  Bitmap out;
  if (stale_conj != nullptr) {
    // Whole-word extension: resident words are copied; only the delta's
    // tail words (including a fully recomputed boundary word) are ANDed
    // from the atom masks — bit-identical to a cold recompose because the
    // atoms themselves are current and the AND is word-local.
    out = *stale_conj;
    const size_t word_begin = stale_conj->size() / 64;
    out.Resize(df.num_rows());
    uint64_t* words = out.mutable_words();
    for (size_t w = word_begin; w < out.num_words(); ++w) {
      uint64_t word = pinned[0].second->words()[w];
      for (size_t k = 1; k < pinned.size(); ++k) {
        word &= pinned[k].second->words()[w];
      }
      words[w] = word;  // atom padding bits are clear, so the AND's are too
    }
  } else {
    // Intersect cheapest-first so the running mask empties as early as
    // possible; each AND is word-level over the whole row universe. The
    // compose runs without the lock so concurrent evaluators don't
    // serialize; the pinned copies own the inputs.
    std::vector<const Bitmap*> masks;
    masks.reserve(pinned.size());
    for (const auto& [id, mask] : pinned) masks.push_back(mask.get());
    std::sort(masks.begin(), masks.end(),
              [](const Bitmap* a, const Bitmap* b) {
                return a->Count() < b->Count();
              });
    out = *masks[0];
    for (size_t i = 1; i < masks.size() && !out.AllZero(); ++i) {
      out &= *masks[i];
    }
  }

  MutexLock lock(mu_);
  return InsertConjunctionLocked(key,
                                 std::make_shared<Bitmap>(std::move(out)));
}

std::shared_ptr<Bitmap> PredicateIndex::InsertConjunctionLocked(
    const std::string& key, std::shared_ptr<Bitmap> mask) const {
  const auto it = conjunctions_.find(key);
  if (it != conjunctions_.end()) {
    if (it->second.mask->size() == mask->size()) {
      // A racing evaluator of the same pattern landed first; keep its mask
      // so previously returned references stay canonical.
      ++hits_;
      CacheMetrics().hits.Increment();
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.mask;
    }
    // A stale (pre-append) entry superseded by its extension: swap in the
    // new shared_ptr — concurrent holders keep the old object alive.
    conjunction_bytes_ -= BitmapBytes(*it->second.mask);
    it->second.mask = std::move(mask);
    it->second.gen = gen_;
    conjunction_bytes_ += BitmapBytes(*it->second.mask);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    ++conjunctions_extended_;
    CacheMetrics().masks_extended.Increment();
    EnforceBudgetLocked();
    return it->second.mask;
  }
  ++misses_;
  CacheMetrics().misses.Increment();
  std::shared_ptr<Bitmap> result = std::move(mask);
  lru_.push_front(key);
  conjunction_bytes_ += BitmapBytes(*result);
  conjunctions_.emplace(key, ConjunctionEntry{result, lru_.begin(), gen_});
  EnforceBudgetLocked();
  return result;
}

void PredicateIndex::EnforceBudgetLocked() const {
  // Eviction runs only under a budget; the gauge refresh at the end runs
  // unconditionally — every byte-mutating path ends here (insert, warm
  // start, budget change), so this is the one place the registry's byte
  // gauges refresh. (Publishing is straight-line code rather than a
  // scope-exit helper: thread-safety analysis cannot see that a local
  // RAII struct's destructor reads these guarded fields under mu_.)
  if (max_bytes_ != 0) {
    const auto held = [&] {
      return conjunction_bytes_ + atom_bytes_ + numeric_order_bytes_;
    };
    // Conjunctions go first: they recompose cheaply from atom masks.
    // Never evict the most-recently-touched entry — the caller that just
    // inserted (or hit) it may still be using the reference.
    while (held() > max_bytes_ && lru_.size() > 1) {
      const auto it = conjunctions_.find(lru_.back());
      conjunction_bytes_ -= BitmapBytes(*it->second.mask);
      conjunctions_.erase(it);
      lru_.pop_back();
      ++evictions_;
      CacheMetrics().evictions.Increment();
    }
    // Atom tier, LRU last: only reached once no evictable conjunction
    // remains. The dense id (and every conjunction key embedding it)
    // stays valid; a re-request rescans the column into the same slot.
    while (held() > max_bytes_ && atom_lru_.size() > 1) {
      const uint32_t id = atom_lru_.back();
      AtomEntry& entry = atom_masks_[id];
      atom_bytes_ -= BitmapBytes(*entry.mask);
      entry.mask.reset();
      atom_lru_.pop_back();
      ++atom_evictions_;
      CacheMetrics().atom_evictions.Increment();
    }
    // Numeric sorted orders last of all: the costliest rebuild (a full
    // re-sort), but also the biggest entries at scale (~12 bytes/row per
    // column) — without this tier a capped index could silently hold
    // hundreds of MB of order state. Holders' shared_ptr copies survive.
    while (held() > max_bytes_ && !numeric_orders_.empty()) {
      const auto it = numeric_orders_.begin();
      numeric_order_bytes_ -=
          it->second->rows.size() * (sizeof(uint32_t) + sizeof(double));
      numeric_orders_.erase(it);
    }
  }
  IndexCacheMetrics& m = CacheMetrics();
  m.atom_bytes.Set(static_cast<double>(atom_bytes_));
  m.conjunction_bytes.Set(static_cast<double>(conjunction_bytes_));
  m.numeric_order_bytes.Set(static_cast<double>(numeric_order_bytes_));
}

void PredicateIndex::WarmStartCategoryMasks(const DataFrame& df, size_t attr,
                                            std::vector<Bitmap> masks) const {
  const Column& col = df.column(attr);
  MutexLock lock(mu_);
  for (size_t code = 0; code < masks.size(); ++code) {
    const std::string key =
        AtomKey(attr, CompareOp::kEq,
                Value(col.CategoryName(static_cast<int32_t>(code))));
    const auto it = atom_ids_.find(key);
    if (it != atom_ids_.end()) {
      // Interned with a live mask: leave it untouched. Interned but
      // budget-evicted (ids survive eviction by design): reinstall into
      // the existing slot — otherwise a warm start after eviction would
      // discard every mask it just built.
      if (atom_masks_[it->second].mask == nullptr) {
        InstallAtomMaskLocked(
            it->second, std::make_shared<Bitmap>(std::move(masks[code])));
        ++warm_atoms_;
        CacheMetrics().warm_atom_masks.Increment();
      }
      continue;
    }
    const uint32_t id = static_cast<uint32_t>(atom_masks_.size());
    atom_masks_.emplace_back();
    atom_ids_.emplace(key, id);
    InstallAtomMaskLocked(id,
                          std::make_shared<Bitmap>(std::move(masks[code])));
    ++warm_atoms_;
    CacheMetrics().warm_atom_masks.Increment();
  }
  EnforceBudgetLocked();
}

bool PredicateIndex::CategoryMasksCached(const DataFrame& df,
                                         size_t attr) const {
  const Column& col = df.column(attr);
  MutexLock lock(mu_);
  for (size_t code = 0; code < col.num_categories(); ++code) {
    const std::string key =
        AtomKey(attr, CompareOp::kEq,
                Value(col.CategoryName(static_cast<int32_t>(code))));
    const auto it = atom_ids_.find(key);
    if (it == atom_ids_.end() || atom_masks_[it->second].mask == nullptr) {
      return false;
    }
  }
  return col.num_categories() > 0;
}

void PredicateIndex::SetMemoryBudget(size_t max_bytes) {
  MutexLock lock(mu_);
  max_bytes_ = max_bytes;
  EnforceBudgetLocked();
}

size_t PredicateIndex::memory_budget() const {
  MutexLock lock(mu_);
  return max_bytes_;
}

void PredicateIndex::Clear() {
  MutexLock lock(mu_);
  atom_ids_.clear();
  atom_masks_.clear();
  atom_lru_.clear();
  conjunctions_.clear();
  lru_.clear();
  conjunction_bytes_ = 0;
  atom_bytes_ = 0;
  all_rows_.reset();
  numeric_orders_.clear();
  numeric_order_bytes_ = 0;
  ++gen_;
  append_mode_ = false;  // nothing cached, so nothing to extend
  EnforceBudgetLocked();  // no-op eviction pass; refreshes the byte gauges
}

void PredicateIndex::OnAppend(const DataFrame& df) {
  (void)df;  // masks extend lazily against the table on next touch
  MutexLock lock(mu_);
  ++gen_;
  append_mode_ = true;
  // Cached entries stay resident: their bits over the old rows are still
  // correct, and every serve path extends (or rebuilds) a stale entry
  // before handing it out. The all-rows mask self-heals on size mismatch.
}

uint64_t PredicateIndex::generation() const {
  MutexLock lock(mu_);
  return gen_;
}

PredicateIndex::CacheStats PredicateIndex::GetStats() const {
  MutexLock lock(mu_);
  CacheStats stats;
  for (const AtomEntry& entry : atom_masks_) {
    if (entry.mask != nullptr) ++stats.atom_masks;
  }
  stats.conjunction_masks = conjunctions_.size();
  stats.hits = hits_;
  stats.misses = misses_;
  stats.atom_bytes = atom_bytes_;
  stats.conjunction_bytes = conjunction_bytes_;
  stats.evictions = evictions_;
  stats.atom_evictions = atom_evictions_;
  stats.warm_atom_masks = warm_atoms_;
  stats.numeric_orders = numeric_orders_.size();
  stats.numeric_order_bytes = numeric_order_bytes_;
  stats.atoms_extended = atoms_extended_;
  stats.conjunctions_extended = conjunctions_extended_;
  stats.orders_merged = orders_merged_;
  stats.rebuilt_after_append = rebuilt_after_append_;
  return stats;
}

}  // namespace faircap
