// Comparison operators for row-selection atoms (`attribute op constant`).
// Lives in the dataframe layer so the PredicateIndex evaluation engine and
// the mining layer's Predicate share one vocabulary.

#ifndef FAIRCAP_DATAFRAME_COMPARE_H_
#define FAIRCAP_DATAFRAME_COMPARE_H_

namespace faircap {

/// Comparison operator in a predicate.
enum class CompareOp { kEq, kNe, kLt, kGt, kLe, kGe };

/// Renders e.g. "=", "!=", "<".
const char* CompareOpName(CompareOp op);

/// Scalar comparison under `op`. NaN operands compare false except under
/// kNe (IEEE semantics); callers that want SQL null semantics must filter
/// nulls before comparing.
inline bool CompareNumeric(double lhs, CompareOp op, double rhs) {
  switch (op) {
    case CompareOp::kEq: return lhs == rhs;
    case CompareOp::kNe: return lhs != rhs;
    case CompareOp::kLt: return lhs < rhs;
    case CompareOp::kGt: return lhs > rhs;
    case CompareOp::kLe: return lhs <= rhs;
    case CompareOp::kGe: return lhs >= rhs;
  }
  return false;
}

}  // namespace faircap

#endif  // FAIRCAP_DATAFRAME_COMPARE_H_
