// PredicateIndex: the shared row-selection engine. Every subgroup the
// pipeline touches — Apriori items, grouping-pattern coverage, treatment
// masks, protected-group membership — is a conjunction of
// `attribute op constant` atoms over one DataFrame. The index memoizes the
// bitmap of each atom (one columnar scan, ever) and of each conjunction
// (word-level ANDs of atom masks), so repeated pattern evaluation costs a
// hash lookup instead of a row scan.
//
// Thread-safe: the mining phase fans out across grouping patterns and all
// of them evaluate through the one index attached to the DataFrame.
// Returned references stay valid until Clear() (which DataFrame calls on
// any row mutation).

#ifndef FAIRCAP_DATAFRAME_PREDICATE_INDEX_H_
#define FAIRCAP_DATAFRAME_PREDICATE_INDEX_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dataframe/bitmap.h"
#include "dataframe/compare.h"
#include "dataframe/value.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace faircap {

class DataFrame;

/// One `attribute op constant` selection atom, the dataframe-layer view of
/// a mining-layer Predicate.
struct PredicateAtom {
  size_t attr = 0;
  CompareOp op = CompareOp::kEq;
  Value value;

  PredicateAtom() = default;
  PredicateAtom(size_t attr_in, CompareOp op_in, Value value_in)
      : attr(attr_in), op(op_in), value(std::move(value_in)) {}
};

/// Memoizing evaluation engine for predicate atoms and conjunctions.
class PredicateIndex {
 public:
  /// Batch-materializing sibling category masks pays off only while the
  /// whole set is small; past this cardinality each category gets its own
  /// on-demand scan so rare codes never allocate a mask nobody asked for.
  /// The streaming-ingest warm start honors the same cap.
  static constexpr size_t kBatchBuildMaxCategories = 64;

  PredicateIndex() = default;
  PredicateIndex(const PredicateIndex&) = delete;
  PredicateIndex& operator=(const PredicateIndex&) = delete;

  /// Materializes every category's equality mask of categorical `attr` in
  /// one columnar pass (`masks[code]` = rows carrying that code; null
  /// rows in none). Shared by the index's lazy batch build and the
  /// streaming-ingest warm start, so the two can never drift.
  static std::vector<Bitmap> BuildCategoryMasks(const DataFrame& df,
                                                size_t attr);

  /// Bitmap of rows of `df` satisfying `attr op value`. Memoized; the
  /// first request for a categorical equality atom materializes the masks
  /// of every category of that column in a single pass. The reference is
  /// stable until Clear() — except under a memory budget, where a cold
  /// atom mask may be evicted (and transparently rebuilt on re-request);
  /// callers that hold the reference across further index calls while a
  /// budget is active must use AtomMaskShared instead.
  const Bitmap& AtomMask(const DataFrame& df, size_t attr, CompareOp op,
                         const Value& value) const;

  /// Shared-ownership variant of AtomMask: the returned pointer keeps the
  /// mask alive even if the budgeted cache evicts the atom.
  std::shared_ptr<const Bitmap> AtomMaskShared(const DataFrame& df,
                                               size_t attr, CompareOp op,
                                               const Value& value) const;

  /// Bitmap of rows satisfying every atom (the empty conjunction selects
  /// all rows). Atom masks are composed with word-level ANDs, cheapest
  /// (most selective) mask first, with an early exit on an empty result.
  /// Memoized per canonical atom-id set; stable until Clear() — except
  /// under a memory budget (SetMemoryBudget), where a cold conjunction
  /// mask may be evicted by a later insertion. Callers that hold a mask
  /// across further index calls while a budget is active must use
  /// ConjunctionMaskShared instead.
  const Bitmap& ConjunctionMask(const DataFrame& df,
                                const std::vector<PredicateAtom>& atoms) const;

  /// Shared-ownership variant of ConjunctionMask: the returned pointer
  /// keeps a multi-atom conjunction mask alive even if the budgeted cache
  /// evicts it. The estimator holds treatment masks through this so long
  /// regressions never race eviction. Caveat: for the empty and
  /// single-atom conjunctions the pointer is a non-owning view of an atom
  /// (or all-rows) mask — never evicted, but still invalidated by
  /// Clear(), i.e. by row mutation; no mask handle may be held across
  /// table mutation.
  std::shared_ptr<const Bitmap> ConjunctionMaskShared(
      const DataFrame& df, const std::vector<PredicateAtom>& atoms) const;

  /// Uncached columnar scan for a single atom — the reference
  /// implementation the cache is built on. Numeric comparisons are
  /// word-batched: 64 rows are compared into one mask word at a time.
  /// Null cells never match — numeric nulls (NaN) are excluded under
  /// every operator including kNe and kLt, mirroring the categorical
  /// null convention.
  static Bitmap Scan(const DataFrame& df, size_t attr, CompareOp op,
                     const Value& value);

  /// Installs precomputed equality masks for every category of
  /// categorical attribute `attr` (`masks[code]` = rows whose value is
  /// `CategoryName(code)`). The streaming ingest path builds these while
  /// the column codes are still hot, so the index starts warm and Apriori
  /// / lattice / treatment evaluation never pay a first-touch column
  /// scan. Categories with a live cached mask are left untouched;
  /// interned-but-budget-evicted masks are reinstalled into their
  /// existing slots.
  void WarmStartCategoryMasks(const DataFrame& df, size_t attr,
                              std::vector<Bitmap> masks) const;

  /// True when every category of categorical `attr` already has a live
  /// cached equality mask — i.e. a warm start (ingest or a previous
  /// batch build) would be wasted work. Callers use this to skip
  /// rebuilding masks the index would only discard.
  bool CategoryMasksCached(const DataFrame& df, size_t attr) const;

  /// Caps the bytes held by the index's caches — conjunction masks, atom
  /// masks, AND the numeric sorted-row orders behind range atoms.
  /// 0 = unlimited (the default). When an insertion pushes usage past the
  /// budget, least-recently-used conjunction masks are evicted first;
  /// atom masks are the recompose primitives, so they form the tier
  /// behind the warm cap and are evicted LRU *last* — only when no
  /// evictable conjunction remains (very-high-cardinality columns can
  /// otherwise bloat a warm index). Numeric orders are the most expensive
  /// entries to rebuild (an O(n log n) sort) and go only after the atom
  /// tier. Evicted entries are transparently rescanned / recomposed /
  /// re-sorted on re-request (atom ids stay stable, so cached conjunction
  /// keys survive atom eviction). Shrinking the budget evicts
  /// immediately.
  void SetMemoryBudget(size_t max_bytes);
  size_t memory_budget() const;

  /// Drops every cached mask (row data changed). Outstanding references
  /// are invalidated.
  void Clear();

  /// Notifies the index that rows were appended to `df` (existing rows
  /// unchanged). Unlike Clear(), cached masks stay resident: every mask's
  /// bits over the old rows are still correct, so stale entries are
  /// extended lazily on next touch — resident words are copied, only the
  /// delta's tail words are rescanned, and numeric sorted-row orders merge
  /// the delta's sorted rows into the cached order. Bumps the index
  /// generation; entries record the generation they cover and a stale
  /// entry is never served (checked at every serve point). Outstanding
  /// mask handles are invalidated, as with any table mutation.
  void OnAppend(const DataFrame& df) EXCLUDES(mu_);

  /// Cache observability (for tests and benchmarks).
  struct CacheStats {
    size_t atom_masks = 0;         ///< distinct atom bitmaps held
    size_t conjunction_masks = 0;  ///< distinct conjunction bitmaps held
    size_t hits = 0;               ///< lookups served from cache
    size_t misses = 0;             ///< lookups that had to scan/compose
    size_t atom_bytes = 0;         ///< bitmap bytes held by atom masks
    size_t conjunction_bytes = 0;  ///< bitmap bytes held by conjunctions
    size_t evictions = 0;          ///< conjunction masks evicted (budget)
    size_t atom_evictions = 0;     ///< atom masks evicted (budget, LRU last)
    size_t warm_atom_masks = 0;    ///< atom masks installed by ingest
    size_t numeric_orders = 0;     ///< sorted-row orders cached for range ops
    size_t numeric_order_bytes = 0;  ///< bytes held by those orders
    size_t atoms_extended = 0;       ///< stale atom masks extended (append)
    size_t conjunctions_extended = 0;  ///< stale conjunctions extended
    size_t orders_merged = 0;        ///< numeric orders delta-merged
    size_t rebuilt_after_append = 0;  ///< full builds while in append mode
  };
  CacheStats GetStats() const;

  /// Index generation: bumped by OnAppend() and Clear(). Entries record
  /// the generation they cover; tests use this to assert lazy extension
  /// actually refreshed an entry.
  uint64_t generation() const EXCLUDES(mu_);

 private:
  /// Interns the atom, scanning (or batch-building) its mask on first
  /// sight. Returns its dense id. Caller must NOT hold mu_.
  uint32_t EnsureAtom(const DataFrame& df, size_t attr, CompareOp op,
                      const Value& value) const EXCLUDES(mu_);

  /// EnsureAtom plus a live shared_ptr to the mask. Pinning matters: a
  /// later insertion can budget-evict the atom from the cache, and
  /// without a pinned copy two atoms of one conjunction could evict each
  /// other's masks forever under a tiny budget. Caller must NOT hold mu_.
  std::pair<uint32_t, std::shared_ptr<const Bitmap>> EnsureAtomPinned(
      const DataFrame& df, size_t attr, CompareOp op,
      const Value& value) const EXCLUDES(mu_);

  /// All-rows mask, built on first use.
  const Bitmap& AllRowsMask(const DataFrame& df) const EXCLUDES(mu_);

  /// Ascending (value-sorted) row order of numeric `attr`, NaN rows
  /// excluded — the one-time index behind range-operator atom masks.
  struct NumericOrder {
    std::vector<uint32_t> rows;   ///< row ids, ascending by value
    std::vector<double> values;   ///< values[i] == numeric(rows[i])
    size_t rows_covered = 0;      ///< df.num_rows() at build/merge time
  };

  /// Like the public Scan but writes only mask words [word_begin, end) of
  /// `out` (rows word_begin*64 onward) — the append-extension primitive:
  /// predicates are row-local, so recomputing whole tail words (including
  /// the boundary word) is bit-identical to a cold full scan. Scan() is
  /// ScanInto at word 0.
  static void ScanInto(const DataFrame& df, size_t attr, CompareOp op,
                       const Value& value, size_t word_begin, Bitmap* out);

  /// Cached NumericOrder for `attr`, built on first request (racing
  /// duplicate builds are identical; the first insertion wins).
  std::shared_ptr<const NumericOrder> NumericOrderFor(const DataFrame& df,
                                                      size_t attr) const
      EXCLUDES(mu_);

  /// Range-operator (kLt/kLe/kGt/kGe) mask for numeric `attr` from the
  /// sorted order: two binary searches bound the qualifying run, and only
  /// its rows are set — O(log n + matches) per distinct threshold instead
  /// of a full per-row double scan. Bit-identical to Scan(): NaN rows are
  /// never in the order, and a NaN threshold matches nothing.
  Bitmap ScanNumericRange(const DataFrame& df, size_t attr, CompareOp op,
                          double rhs) const;

  mutable Mutex mu_;
  // Column scans and mask composition run outside mu_; concurrent
  // first-touch builds of the same atom (or same column batch) coordinate
  // through this in-flight key set instead of duplicating the scan.
  mutable CondVar build_done_;
  mutable std::unordered_set<std::string> in_flight_ GUARDED_BY(mu_);
  /// Inserts `mask` under `key`, wires it into the LRU, and evicts from
  /// the cold end while over budget. Returns the canonical mask (an
  /// earlier racing insert wins). Caller must hold mu_.
  std::shared_ptr<Bitmap> InsertConjunctionLocked(
      const std::string& key, std::shared_ptr<Bitmap> mask) const
      REQUIRES(mu_);

  /// Evicts LRU-tail conjunctions until within budget. Caller holds mu_.
  void EnforceBudgetLocked() const REQUIRES(mu_);

  /// Inserts the freshly scanned `mask` for atom id `id`, charging the
  /// budget and wiring the atom LRU. Caller must hold mu_.
  void InstallAtomMaskLocked(uint32_t id, std::shared_ptr<Bitmap> mask) const
      REQUIRES(mu_);

  /// Most-recently-used touch of an atom. Caller must hold mu_.
  void TouchAtomLocked(uint32_t id) const REQUIRES(mu_);

  // Atom key -> dense id; masks indexed by id. Ids are stable forever
  // (conjunction keys embed them); under a budget the *mask* of a cold
  // atom may be dropped (entry.mask == nullptr) and is rescanned on
  // re-request. shared_ptr ownership keeps masks handed out via
  // AtomMaskShared / single-atom ConjunctionMaskShared alive across
  // eviction.
  struct AtomEntry {
    std::shared_ptr<Bitmap> mask;
    std::list<uint32_t>::iterator lru_pos;  // valid iff mask != nullptr
    uint64_t gen = 0;  ///< index generation this mask covers
  };
  mutable std::unordered_map<std::string, uint32_t> atom_ids_
      GUARDED_BY(mu_);
  mutable std::vector<AtomEntry> atom_masks_ GUARDED_BY(mu_);
  mutable std::list<uint32_t> atom_lru_ GUARDED_BY(mu_);  // most-recent first
  // Canonical sorted-id key -> conjunction mask, with an LRU list
  // (most-recent first) driving budget eviction. shared_ptr ownership
  // keeps masks handed out via ConjunctionMaskShared alive across
  // eviction.
  struct ConjunctionEntry {
    std::shared_ptr<Bitmap> mask;
    std::list<std::string>::iterator lru_pos;
    uint64_t gen = 0;  ///< index generation this mask covers
  };
  mutable std::unordered_map<std::string, ConjunctionEntry> conjunctions_
      GUARDED_BY(mu_);
  mutable std::list<std::string> lru_ GUARDED_BY(mu_);
  mutable std::unique_ptr<Bitmap> all_rows_ GUARDED_BY(mu_);
  // Per-attr sorted row order for numeric range atoms (~12 bytes per
  // non-null row — much bigger than one mask at scale). Counted against
  // the byte budget and evicted behind the atom tier: orders are the most
  // expensive entries to rebuild (an O(n log n) sort vs an O(n) rescan),
  // so they go last. Outstanding shared_ptr holders keep an evicted
  // order alive; a re-request re-sorts. Clear() drops them too.
  mutable std::unordered_map<size_t, std::shared_ptr<const NumericOrder>>
      numeric_orders_ GUARDED_BY(mu_);
  mutable size_t numeric_order_bytes_ GUARDED_BY(mu_) = 0;
  mutable size_t max_bytes_ GUARDED_BY(mu_) = 0;  // 0 = unlimited
  mutable size_t conjunction_bytes_ GUARDED_BY(mu_) = 0;
  mutable size_t atom_bytes_ GUARDED_BY(mu_) = 0;
  mutable size_t hits_ GUARDED_BY(mu_) = 0;
  mutable size_t misses_ GUARDED_BY(mu_) = 0;
  mutable size_t evictions_ GUARDED_BY(mu_) = 0;
  mutable size_t atom_evictions_ GUARDED_BY(mu_) = 0;
  mutable size_t warm_atoms_ GUARDED_BY(mu_) = 0;
  // Append bookkeeping: gen_ bumps on OnAppend()/Clear(); append_mode_
  // (set by OnAppend, cleared by Clear) marks that stale-entry extension
  // is in play, so full builds can be told apart from extensions in the
  // append.* metrics.
  mutable uint64_t gen_ GUARDED_BY(mu_) = 0;
  mutable bool append_mode_ GUARDED_BY(mu_) = false;
  mutable size_t atoms_extended_ GUARDED_BY(mu_) = 0;
  mutable size_t conjunctions_extended_ GUARDED_BY(mu_) = 0;
  mutable size_t orders_merged_ GUARDED_BY(mu_) = 0;
  mutable size_t rebuilt_after_append_ GUARDED_BY(mu_) = 0;
};

}  // namespace faircap

#endif  // FAIRCAP_DATAFRAME_PREDICATE_INDEX_H_
