// PredicateIndex: the shared row-selection engine. Every subgroup the
// pipeline touches — Apriori items, grouping-pattern coverage, treatment
// masks, protected-group membership — is a conjunction of
// `attribute op constant` atoms over one DataFrame. The index memoizes the
// bitmap of each atom (one columnar scan, ever) and of each conjunction
// (word-level ANDs of atom masks), so repeated pattern evaluation costs a
// hash lookup instead of a row scan.
//
// Thread-safe: the mining phase fans out across grouping patterns and all
// of them evaluate through the one index attached to the DataFrame.
// Returned references stay valid until Clear() (which DataFrame calls on
// any row mutation).

#ifndef FAIRCAP_DATAFRAME_PREDICATE_INDEX_H_
#define FAIRCAP_DATAFRAME_PREDICATE_INDEX_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dataframe/bitmap.h"
#include "dataframe/compare.h"
#include "dataframe/value.h"

namespace faircap {

class DataFrame;

/// One `attribute op constant` selection atom, the dataframe-layer view of
/// a mining-layer Predicate.
struct PredicateAtom {
  size_t attr = 0;
  CompareOp op = CompareOp::kEq;
  Value value;

  PredicateAtom() = default;
  PredicateAtom(size_t attr_in, CompareOp op_in, Value value_in)
      : attr(attr_in), op(op_in), value(std::move(value_in)) {}
};

/// Memoizing evaluation engine for predicate atoms and conjunctions.
class PredicateIndex {
 public:
  PredicateIndex() = default;
  PredicateIndex(const PredicateIndex&) = delete;
  PredicateIndex& operator=(const PredicateIndex&) = delete;

  /// Bitmap of rows of `df` satisfying `attr op value`. Memoized; the
  /// first request for a categorical equality atom materializes the masks
  /// of every category of that column in a single pass. The reference is
  /// stable until Clear().
  const Bitmap& AtomMask(const DataFrame& df, size_t attr, CompareOp op,
                         const Value& value) const;

  /// Bitmap of rows satisfying every atom (the empty conjunction selects
  /// all rows). Atom masks are composed with word-level ANDs, cheapest
  /// (most selective) mask first, with an early exit on an empty result.
  /// Memoized per canonical atom-id set; stable until Clear().
  const Bitmap& ConjunctionMask(const DataFrame& df,
                                const std::vector<PredicateAtom>& atoms) const;

  /// Uncached columnar scan for a single atom — the reference
  /// implementation the cache is built on.
  static Bitmap Scan(const DataFrame& df, size_t attr, CompareOp op,
                     const Value& value);

  /// Drops every cached mask (row data changed). Outstanding references
  /// are invalidated.
  void Clear();

  /// Cache observability (for tests and benchmarks).
  struct CacheStats {
    size_t atom_masks = 0;         ///< distinct atom bitmaps held
    size_t conjunction_masks = 0;  ///< distinct conjunction bitmaps held
    size_t hits = 0;               ///< lookups served from cache
    size_t misses = 0;             ///< lookups that had to scan/compose
  };
  CacheStats GetStats() const;

 private:
  /// Interns the atom, scanning (or batch-building) its mask on first
  /// sight. Returns its dense id. Caller must NOT hold mu_.
  uint32_t EnsureAtom(const DataFrame& df, size_t attr, CompareOp op,
                      const Value& value) const;

  /// All-rows mask, built on first use.
  const Bitmap& AllRowsMask(const DataFrame& df) const;

  mutable std::mutex mu_;
  // Column scans and mask composition run outside mu_; concurrent
  // first-touch builds of the same atom (or same column batch) coordinate
  // through this in-flight key set instead of duplicating the scan.
  mutable std::condition_variable build_done_;
  mutable std::unordered_set<std::string> in_flight_;
  // Atom key -> dense id; masks indexed by id (unique_ptr keeps references
  // stable across vector growth).
  mutable std::unordered_map<std::string, uint32_t> atom_ids_;
  mutable std::vector<std::unique_ptr<Bitmap>> atom_masks_;
  // Canonical sorted-id key -> conjunction mask.
  mutable std::unordered_map<std::string, std::unique_ptr<Bitmap>>
      conjunctions_;
  mutable std::unique_ptr<Bitmap> all_rows_;
  mutable size_t hits_ = 0;
  mutable size_t misses_ = 0;
};

}  // namespace faircap

#endif  // FAIRCAP_DATAFRAME_PREDICATE_INDEX_H_
