// Value: a single typed cell. FairCap datasets mix categorical attributes
// (dictionary-encoded strings) and numeric attributes (doubles); Value is
// the row-oriented view used at API boundaries (row append, predicates,
// rule rendering). Hot loops operate on columnar codes instead.

#ifndef FAIRCAP_DATAFRAME_VALUE_H_
#define FAIRCAP_DATAFRAME_VALUE_H_

#include <cmath>
#include <string>
#include <utility>
#include <variant>

namespace faircap {

enum class ValueType { kNull = 0, kNumeric, kString };

/// A null, numeric (double), or string cell value.
class Value {
 public:
  /// Constructs a null value.
  Value() : data_(std::monostate{}) {}
  Value(double v) : data_(v) {}                        // NOLINT
  Value(int v) : data_(static_cast<double>(v)) {}      // NOLINT
  Value(int64_t v) : data_(static_cast<double>(v)) {}  // NOLINT
  Value(std::string v) : data_(std::move(v)) {}        // NOLINT
  Value(const char* v) : data_(std::string(v)) {}      // NOLINT

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (data_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kNumeric;
      default: return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const { return type() == ValueType::kNumeric; }
  bool is_string() const { return type() == ValueType::kString; }

  /// Numeric payload; only valid when is_numeric().
  double numeric() const { return std::get<double>(data_); }

  /// String payload; only valid when is_string().
  const std::string& str() const { return std::get<std::string>(data_); }

  /// Renders for display: "null", the number, or the string.
  std::string ToString() const;

  /// Strict equality: same type and payload. Null equals null.
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  std::variant<std::monostate, double, std::string> data_;
};

inline std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kNumeric: {
      const double v = numeric();
      if (std::floor(v) == v && std::abs(v) < 1e15) {
        return std::to_string(static_cast<int64_t>(v));
      }
      char buf[64];
      snprintf(buf, sizeof(buf), "%.6g", v);
      return buf;
    }
    case ValueType::kString:
      return str();
  }
  return "?";
}

}  // namespace faircap

#endif  // FAIRCAP_DATAFRAME_VALUE_H_
