// Discretization of numeric attributes into categorical bins. Grouping
// patterns and intervention atoms require categorical attributes; a
// dataset with numeric immutable attributes (age, income brackets) is
// discretized up front, exactly as survey datasets ship pre-binned
// ("25-34") in the paper.

#ifndef FAIRCAP_DATAFRAME_DISCRETIZE_H_
#define FAIRCAP_DATAFRAME_DISCRETIZE_H_

#include <string>

#include "dataframe/dataframe.h"
#include "util/result.h"

namespace faircap {

/// How bin boundaries are chosen.
enum class BinningStrategy {
  kEqualFrequency,  ///< quantile bins (default; robust to skew)
  kEqualWidth,      ///< uniform intervals over [min, max]
};

/// Options for discretization.
struct DiscretizeOptions {
  size_t num_bins = 4;
  BinningStrategy strategy = BinningStrategy::kEqualFrequency;
  /// Label style: "[lo, hi)" interval labels.
  int label_precision = 6;
};

/// Returns a copy of `df` where numeric attribute `name` is replaced by a
/// categorical attribute with interval labels (nulls stay null). The
/// attribute keeps its name and role. Fails if the attribute is not
/// numeric, is the outcome, or has fewer distinct values than bins
/// require (degenerate columns collapse to a single bin instead).
Result<DataFrame> DiscretizeColumn(const DataFrame& df,
                                   const std::string& name,
                                   const DiscretizeOptions& options = {});

}  // namespace faircap

#endif  // FAIRCAP_DATAFRAME_DISCRETIZE_H_
