// Column: typed columnar storage. Categorical columns are dictionary
// encoded (int32 codes into a string dictionary); numeric columns hold
// doubles. Nulls are code -1 / NaN respectively.

#ifndef FAIRCAP_DATAFRAME_COLUMN_H_
#define FAIRCAP_DATAFRAME_COLUMN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataframe/schema.h"
#include "dataframe/value.h"
#include "util/result.h"

namespace faircap {

/// One attribute's values for all rows.
class Column {
 public:
  /// Null sentinel for categorical codes.
  static constexpr int32_t kNullCode = -1;

  explicit Column(AttrType type) : type_(type) {}

  /// Builds a categorical column wholesale from dictionary codes (the
  /// columnar ingest path — no per-cell Value round trips). `codes` must
  /// be kNullCode or indices into `dictionary`; dictionary entries must be
  /// distinct. `trusted` skips the per-code range scan — only for callers
  /// that minted every code from `dictionary` themselves.
  static Result<Column> FromCodes(std::vector<int32_t> codes,
                                  std::vector<std::string> dictionary,
                                  bool trusted = false);

  /// Builds a numeric column wholesale (nulls are NaN).
  static Column FromNumeric(std::vector<double> values);

  AttrType type() const { return type_; }
  size_t size() const {
    return type_ == AttrType::kCategorical ? codes_.size() : values_.size();
  }

  /// Appends a cell. Numeric values into categorical columns (and vice
  /// versa) are rejected; nulls are always accepted.
  Status Append(const Value& v);

  void AppendNull();

  bool IsNull(size_t row) const;

  /// Categorical code at `row` (kNullCode when null). Categorical only.
  int32_t code(size_t row) const { return codes_[row]; }

  /// Numeric value at `row` (NaN when null). Numeric only.
  double numeric(size_t row) const { return values_[row]; }

  /// Raw numeric storage (NaN where null). Numeric only — the word-batched
  /// columnar scans walk this directly.
  const double* numeric_data() const { return values_.data(); }

  /// Raw code storage (kNullCode where null). Categorical only — the
  /// word-batched columnar scans walk this directly.
  const int32_t* codes_data() const { return codes_.data(); }

  /// Dictionary string for `code`. Categorical only.
  const std::string& CategoryName(int32_t code) const {
    return dictionary_[static_cast<size_t>(code)];
  }

  /// Code of `category` if present, NotFound otherwise. Categorical only.
  Result<int32_t> CodeOf(const std::string& category) const;

  /// Code of `category`, inserting into the dictionary if new.
  int32_t GetOrAddCategory(const std::string& category);

  /// Number of distinct categories seen (categorical only).
  size_t num_categories() const { return dictionary_.size(); }

  /// Row-oriented view of one cell.
  Value GetValue(size_t row) const;

  /// New column containing `rows` (in order). Dictionary is shared content-
  /// wise: the taken column re-uses the same codes and dictionary.
  Column Take(const std::vector<uint32_t>& rows) const;

  /// Appends all of `delta`'s cells. Categorical: delta codes are remapped
  /// through this column's dictionary via first-appearance merge — delta
  /// dictionary entries are visited in ascending code order, so new
  /// categories receive exactly the codes a cold row-order ingest of the
  /// concatenated data would assign, and resident codes never change.
  /// Types must match.
  Status ExtendFrom(const Column& delta);

  void Reserve(size_t n);

 private:
  AttrType type_;
  // Categorical storage.
  std::vector<int32_t> codes_;
  std::vector<std::string> dictionary_;
  std::unordered_map<std::string, int32_t> dictionary_index_;
  // Numeric storage.
  std::vector<double> values_;
};

}  // namespace faircap

#endif  // FAIRCAP_DATAFRAME_COLUMN_H_
