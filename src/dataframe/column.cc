#include "dataframe/column.h"

#include <cmath>

namespace faircap {

Result<Column> Column::FromCodes(std::vector<int32_t> codes,
                                 std::vector<std::string> dictionary,
                                 bool trusted) {
  Column col(AttrType::kCategorical);
  col.dictionary_index_.reserve(dictionary.size());
  for (size_t i = 0; i < dictionary.size(); ++i) {
    const auto inserted =
        col.dictionary_index_.emplace(dictionary[i], static_cast<int32_t>(i));
    if (!inserted.second) {
      return Status::InvalidArgument("duplicate dictionary entry '" +
                                     dictionary[i] + "'");
    }
  }
  if (!trusted) {
    const int32_t num_categories = static_cast<int32_t>(dictionary.size());
    for (const int32_t code : codes) {
      if (code != kNullCode && (code < 0 || code >= num_categories)) {
        return Status::OutOfRange("category code " + std::to_string(code) +
                                  " outside dictionary of size " +
                                  std::to_string(dictionary.size()));
      }
    }
  }
  col.dictionary_ = std::move(dictionary);
  col.codes_ = std::move(codes);
  return col;
}

Column Column::FromNumeric(std::vector<double> values) {
  Column col(AttrType::kNumeric);
  col.values_ = std::move(values);
  return col;
}

Status Column::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  if (type_ == AttrType::kCategorical) {
    if (!v.is_string()) {
      return Status::InvalidArgument(
          "cannot append numeric value to categorical column");
    }
    codes_.push_back(GetOrAddCategory(v.str()));
    return Status::OK();
  }
  if (!v.is_numeric()) {
    return Status::InvalidArgument(
        "cannot append string value to numeric column");
  }
  values_.push_back(v.numeric());
  return Status::OK();
}

void Column::AppendNull() {
  if (type_ == AttrType::kCategorical) {
    codes_.push_back(kNullCode);
  } else {
    values_.push_back(std::nan(""));
  }
}

bool Column::IsNull(size_t row) const {
  if (type_ == AttrType::kCategorical) return codes_[row] == kNullCode;
  return std::isnan(values_[row]);
}

Result<int32_t> Column::CodeOf(const std::string& category) const {
  const auto it = dictionary_index_.find(category);
  if (it == dictionary_index_.end()) {
    return Status::NotFound("category '" + category + "' not in dictionary");
  }
  return it->second;
}

int32_t Column::GetOrAddCategory(const std::string& category) {
  const auto it = dictionary_index_.find(category);
  if (it != dictionary_index_.end()) return it->second;
  const int32_t code = static_cast<int32_t>(dictionary_.size());
  dictionary_.push_back(category);
  dictionary_index_.emplace(category, code);
  return code;
}

Value Column::GetValue(size_t row) const {
  if (IsNull(row)) return Value::Null();
  if (type_ == AttrType::kCategorical) {
    return Value(dictionary_[static_cast<size_t>(codes_[row])]);
  }
  return Value(values_[row]);
}

Column Column::Take(const std::vector<uint32_t>& rows) const {
  Column out(type_);
  out.dictionary_ = dictionary_;
  out.dictionary_index_ = dictionary_index_;
  if (type_ == AttrType::kCategorical) {
    out.codes_.reserve(rows.size());
    for (uint32_t r : rows) out.codes_.push_back(codes_[r]);
  } else {
    out.values_.reserve(rows.size());
    for (uint32_t r : rows) out.values_.push_back(values_[r]);
  }
  return out;
}

Status Column::ExtendFrom(const Column& delta) {
  if (delta.type_ != type_) {
    return Status::InvalidArgument("cannot extend column with mismatched type");
  }
  if (type_ == AttrType::kCategorical) {
    // First-appearance dictionary merge (same contract as parallel ingest):
    // walking the delta dictionary in ascending code order assigns new
    // categories the same codes a cold ingest of the concatenated rows
    // would, because the delta dictionary itself is in first-appearance
    // row order.
    std::vector<int32_t> remap(delta.dictionary_.size());
    for (size_t c = 0; c < delta.dictionary_.size(); ++c) {
      remap[c] = GetOrAddCategory(delta.dictionary_[c]);
    }
    codes_.reserve(codes_.size() + delta.codes_.size());
    for (const int32_t code : delta.codes_) {
      codes_.push_back(code == kNullCode ? kNullCode
                                         : remap[static_cast<size_t>(code)]);
    }
  } else {
    values_.insert(values_.end(), delta.values_.begin(), delta.values_.end());
  }
  return Status::OK();
}

void Column::Reserve(size_t n) {
  if (type_ == AttrType::kCategorical) {
    codes_.reserve(n);
  } else {
    values_.reserve(n);
  }
}

}  // namespace faircap
