#include "dataframe/csv.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace faircap {

namespace {

// Splits one CSV record honoring double-quote escaping. Returns false on a
// dangling quote. CR bytes are kept verbatim (quoted fields may legally
// contain CRLF); the record reader strips the line-terminator CR before
// records get here.
bool SplitRecord(const std::string& line, char delim,
                 std::vector<std::string>* out) {
  out->clear();
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      out->push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  if (in_quotes) return false;
  out->push_back(std::move(field));
  return true;
}

// Quote parity of one physical line (RFC-4180 escaping means parity
// decides whether a quote is open: "" contributes two quotes).
bool OddQuoteCount(const std::string& line) {
  size_t quotes = 0;
  for (const char c : line) quotes += (c == '"');
  return (quotes % 2) != 0;
}

// Reads one *logical* record: a quoted field may contain the record
// delimiter, so physical lines are joined (with the '\n' restored) until
// the quote state closes. Parity is tracked per appended line, so a
// record spanning L lines costs O(L) total, not O(L^2). The terminating
// CR of a CRLF line ending is stripped; CRs inside an open quote are data
// and survive. Returns false at end of input, advancing `line_no` by the
// physical lines consumed.
bool ReadRecord(std::istream& in, std::string* record, size_t* line_no) {
  record->clear();
  std::string line;
  if (!std::getline(in, line)) return false;
  ++*line_no;
  bool open = OddQuoteCount(line);
  *record = std::move(line);
  while (open && std::getline(in, line)) {
    ++*line_no;
    open ^= OddQuoteCount(line);
    *record += '\n';
    *record += line;
  }
  if (!record->empty() && record->back() == '\r' && !open) {
    record->pop_back();
  }
  return true;
}

bool IsNullCell(const std::string& cell, const CsvOptions& options) {
  const std::string_view trimmed = Trim(cell);
  return trimmed.empty() || trimmed == options.null_token;
}

Result<DataFrame> ParseRows(std::istream& in, const Schema& schema,
                            const CsvOptions& options, bool check_header) {
  std::string line;
  size_t line_no = 0;
  if (!ReadRecord(in, &line, &line_no)) {
    return Status::IOError("CSV input is empty (no header)");
  }
  std::vector<std::string> cells;
  if (!SplitRecord(line, options.delimiter, &cells)) {
    return Status::IOError("unterminated quote in CSV header");
  }
  if (check_header) {
    if (cells.size() != schema.num_attributes()) {
      return Status::InvalidArgument(
          "CSV header arity does not match schema");
    }
    for (size_t i = 0; i < cells.size(); ++i) {
      if (std::string(Trim(cells[i])) != schema.attribute(i).name) {
        return Status::InvalidArgument("CSV header column '" + cells[i] +
                                       "' does not match schema attribute '" +
                                       schema.attribute(i).name + "'");
      }
    }
  }

  DataFrame df = DataFrame::Create(schema);
  std::vector<Value> row(schema.num_attributes());
  while (ReadRecord(in, &line, &line_no)) {
    if (line.empty()) continue;
    if (!SplitRecord(line, options.delimiter, &cells)) {
      return Status::IOError("unterminated quote at line " +
                             std::to_string(line_no));
    }
    if (cells.size() != schema.num_attributes()) {
      return Status::InvalidArgument(
          "row at line " + std::to_string(line_no) + " has " +
          std::to_string(cells.size()) + " cells, expected " +
          std::to_string(schema.num_attributes()));
    }
    for (size_t i = 0; i < cells.size(); ++i) {
      if (IsNullCell(cells[i], options)) {
        row[i] = Value::Null();
      } else if (schema.attribute(i).type == AttrType::kNumeric) {
        double v = 0.0;
        if (!ParseDouble(cells[i], &v)) {
          return Status::InvalidArgument(
              "cell '" + cells[i] + "' at line " + std::to_string(line_no) +
              " is not numeric (attribute '" + schema.attribute(i).name +
              "')");
        }
        row[i] = Value(v);
      } else {
        row[i] = Value(std::string(Trim(cells[i])));
      }
    }
    FAIRCAP_RETURN_NOT_OK(df.AppendRow(row));
  }
  return df;
}

Result<Schema> InferSchema(std::istream& in, const CsvOptions& options) {
  std::string line;
  size_t line_no = 0;
  if (!ReadRecord(in, &line, &line_no)) {
    return Status::IOError("CSV input is empty (no header)");
  }
  std::vector<std::string> header;
  if (!SplitRecord(line, options.delimiter, &header)) {
    return Status::IOError("unterminated quote in CSV header");
  }
  std::vector<bool> numeric(header.size(), true);
  std::vector<bool> saw_value(header.size(), false);
  std::vector<std::string> cells;
  while (ReadRecord(in, &line, &line_no)) {
    if (line.empty()) continue;
    if (!SplitRecord(line, options.delimiter, &cells)) {
      return Status::IOError("unterminated quote in CSV body");
    }
    if (cells.size() != header.size()) {
      return Status::InvalidArgument("ragged CSV row during inference");
    }
    for (size_t i = 0; i < cells.size(); ++i) {
      if (IsNullCell(cells[i], options)) continue;
      saw_value[i] = true;
      double v = 0.0;
      if (!ParseDouble(cells[i], &v)) numeric[i] = false;
    }
  }
  std::vector<AttributeSpec> attrs;
  attrs.reserve(header.size());
  for (size_t i = 0; i < header.size(); ++i) {
    AttributeSpec spec;
    spec.name = std::string(Trim(header[i]));
    // Columns that never produced a value stay categorical.
    spec.type = (saw_value[i] && numeric[i]) ? AttrType::kNumeric
                                             : AttrType::kCategorical;
    spec.role = AttrRole::kImmutable;
    attrs.push_back(std::move(spec));
  }
  return Schema::Create(std::move(attrs));
}

std::string EscapeCell(const std::string& cell, char delim) {
  const bool needs_quotes =
      cell.find(delim) != std::string::npos ||
      cell.find('"') != std::string::npos ||
      cell.find('\n') != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<DataFrame> ReadCsv(const std::string& path, const Schema& schema,
                          const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return ParseRows(in, schema, options, /*check_header=*/true);
}

Result<DataFrame> ParseCsv(const std::string& content, const Schema& schema,
                           const CsvOptions& options) {
  std::istringstream in(content);
  return ParseRows(in, schema, options, /*check_header=*/true);
}

Result<Schema> InferCsvSchema(const std::string& path,
                              const CsvOptions& options) {
  std::ifstream probe(path);
  if (!probe) return Status::IOError("cannot open '" + path + "' for reading");
  return InferSchema(probe, options);
}

Result<DataFrame> ReadCsvInferSchema(const std::string& path,
                                     const CsvOptions& options) {
  FAIRCAP_ASSIGN_OR_RETURN(Schema schema, InferCsvSchema(path, options));
  return ReadCsv(path, schema, options);
}

Result<DataFrame> ParseCsvInferSchema(const std::string& content,
                                      const CsvOptions& options) {
  std::istringstream probe(content);
  FAIRCAP_ASSIGN_OR_RETURN(Schema schema, InferSchema(probe, options));
  return ParseCsv(content, schema, options);
}

Status WriteCsv(const DataFrame& df, const std::string& path,
                const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  const Schema& schema = df.schema();
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (i > 0) out << options.delimiter;
    out << EscapeCell(schema.attribute(i).name, options.delimiter);
  }
  out << "\n";
  for (size_t row = 0; row < df.num_rows(); ++row) {
    for (size_t col = 0; col < df.num_columns(); ++col) {
      if (col > 0) out << options.delimiter;
      const Value v = df.GetValue(row, col);
      if (v.is_null()) {
        out << options.null_token;
      } else {
        out << EscapeCell(v.ToString(), options.delimiter);
      }
    }
    out << "\n";
  }
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace faircap
