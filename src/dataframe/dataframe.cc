#include "dataframe/dataframe.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "dataframe/predicate_index.h"

namespace faircap {

DataFrame::DataFrame() : index_(std::make_unique<PredicateIndex>()) {}

DataFrame::~DataFrame() = default;

DataFrame::DataFrame(const DataFrame& other)
    : schema_(other.schema_),
      columns_(other.columns_),
      num_rows_(other.num_rows_),
      index_(std::make_unique<PredicateIndex>()) {}

DataFrame& DataFrame::operator=(const DataFrame& other) {
  if (this != &other) {
    schema_ = other.schema_;
    columns_ = other.columns_;
    num_rows_ = other.num_rows_;
    InvalidateIndex();  // null-safe: the destination may be moved-from
  }
  return *this;
}

// Moves keep the warm index: the masks describe row contents, which move
// along unchanged.
DataFrame::DataFrame(DataFrame&& other) noexcept = default;

DataFrame& DataFrame::operator=(DataFrame&& other) noexcept = default;

void DataFrame::InvalidateIndex() {
  ++generation_;
  if (index_ != nullptr) index_->Clear();
}

PredicateIndex& DataFrame::predicate_index() const {
  // Only a moved-from table lacks an index; rebuilding here keeps such
  // objects safe to reuse (single-threaded by definition at that point).
  if (index_ == nullptr) index_ = std::make_unique<PredicateIndex>();
  return *index_;
}

DataFrame DataFrame::Create(Schema schema) {
  DataFrame df;
  df.columns_.reserve(schema.num_attributes());
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    df.columns_.emplace_back(schema.attribute(i).type);
  }
  df.schema_ = std::move(schema);
  return df;
}

Result<DataFrame> DataFrame::FromColumns(Schema schema,
                                         std::vector<Column> columns) {
  if (columns.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "column count does not match schema arity");
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].type() != schema.attribute(i).type) {
      return Status::InvalidArgument("column type mismatch for attribute '" +
                                     schema.attribute(i).name + "'");
    }
    if (columns[i].size() != columns[0].size()) {
      return Status::InvalidArgument(
          "columns have unequal lengths (attribute '" +
          schema.attribute(i).name + "')");
    }
  }
  DataFrame df;
  df.num_rows_ = columns.empty() ? 0 : columns[0].size();
  df.columns_ = std::move(columns);
  df.schema_ = std::move(schema);
  return df;
}

Result<const Column*> DataFrame::ColumnByName(const std::string& name) const {
  FAIRCAP_ASSIGN_OR_RETURN(const size_t idx, schema_.IndexOf(name));
  return &columns_[idx];
}

Status DataFrame::ValidateRow(const std::vector<Value>& values) const {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    const Value& v = values[i];
    if (v.is_null()) continue;
    const bool want_string = columns_[i].type() == AttrType::kCategorical;
    if (want_string != v.is_string()) {
      return Status::InvalidArgument(
          "type mismatch for attribute '" + schema_.attribute(i).name + "'");
    }
  }
  return Status::OK();
}

Status DataFrame::AppendRow(const std::vector<Value>& values) {
  // Validate all cells before mutating any column so a failed append leaves
  // the table unchanged.
  FAIRCAP_RETURN_NOT_OK(ValidateRow(values));
  for (size_t i = 0; i < values.size(); ++i) {
    const Status st = columns_[i].Append(values[i]);
    assert(st.ok());
    (void)st;
  }
  ++num_rows_;
  InvalidateIndex();
  return Status::OK();
}

Status DataFrame::AppendRows(const std::vector<std::vector<Value>>& rows) {
  for (const auto& row : rows) {
    FAIRCAP_RETURN_NOT_OK(ValidateRow(row));
  }
  // One amortized reservation for the whole batch (doubling from the
  // current size so repeated bulk appends stay geometric), then one index
  // invalidation — instead of a per-row mutex acquisition + cache clear.
  const size_t needed = num_rows_ + rows.size();
  Reserve(std::max(needed, 2 * num_rows_));
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      const Status st = columns_[i].Append(row[i]);
      assert(st.ok());
      (void)st;
    }
  }
  num_rows_ = needed;
  InvalidateIndex();
  return Status::OK();
}

Status DataFrame::AppendFrame(const DataFrame& delta) {
  if (delta.schema_.num_attributes() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "delta schema does not match resident schema");
  }
  for (size_t i = 0; i < schema_.num_attributes(); ++i) {
    const AttributeSpec& a = schema_.attribute(i);
    const AttributeSpec& b = delta.schema_.attribute(i);
    if (a.name != b.name || a.type != b.type || a.role != b.role) {
      return Status::InvalidArgument(
          "delta schema does not match resident schema at attribute '" +
          a.name + "'");
    }
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    FAIRCAP_RETURN_NOT_OK(columns_[i].ExtendFrom(delta.columns_[i]));
  }
  num_rows_ += delta.num_rows_;
  ++generation_;
  // Appends keep the warm index: resident bits of every cached mask are
  // still valid, so the index extends masks lazily instead of rebuilding.
  if (index_ != nullptr) index_->OnAppend(*this);
  return Status::OK();
}

DataFrame DataFrame::Take(const Bitmap& mask) const {
  return TakeRows(mask.ToIndices());
}

DataFrame DataFrame::TakeRows(const std::vector<uint32_t>& rows) const {
  DataFrame out;
  out.schema_ = schema_;
  out.columns_.reserve(columns_.size());
  for (const Column& col : columns_) {
    out.columns_.push_back(col.Take(rows));
  }
  out.num_rows_ = rows.size();
  return out;
}

DataFrame DataFrame::SampleFraction(double fraction, Rng* rng) const {
  assert(fraction >= 0.0 && fraction <= 1.0);
  const size_t target = static_cast<size_t>(
      std::llround(fraction * static_cast<double>(num_rows_)));
  std::vector<size_t> perm = rng->Permutation(num_rows_);
  std::vector<uint32_t> rows(perm.begin(), perm.begin() + target);
  std::sort(rows.begin(), rows.end());
  return TakeRows(rows);
}

double DataFrame::Mean(size_t col, const Bitmap& mask) const {
  const Column& c = columns_[col];
  assert(c.type() == AttrType::kNumeric);
  double sum = 0.0;
  size_t n = 0;
  mask.ForEach([&](size_t row) {
    const double v = c.numeric(row);
    if (!std::isnan(v)) {
      sum += v;
      ++n;
    }
  });
  if (n == 0) return std::nan("");
  return sum / static_cast<double>(n);
}

double DataFrame::Mean(size_t col) const { return Mean(col, AllRows()); }

Status DataFrame::SetRole(const std::string& name, AttrRole role) {
  FAIRCAP_ASSIGN_OR_RETURN(const size_t idx, schema_.IndexOf(name));
  // Rebuild the schema with the updated role; Schema validates invariants
  // (e.g. at most one outcome).
  std::vector<AttributeSpec> attrs = schema_.attributes();
  attrs[idx].role = role;
  FAIRCAP_ASSIGN_OR_RETURN(Schema updated, Schema::Create(std::move(attrs)));
  schema_ = std::move(updated);
  return Status::OK();
}

void DataFrame::Reserve(size_t n) {
  for (Column& c : columns_) c.Reserve(n);
}

}  // namespace faircap
