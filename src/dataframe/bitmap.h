// Bitmap: fixed-size bitset over row indices. Pattern coverage, protected
// group membership, and ruleset coverage are all row selections; set
// algebra on bitmaps is the workhorse of the selection algorithms.

#ifndef FAIRCAP_DATAFRAME_BITMAP_H_
#define FAIRCAP_DATAFRAME_BITMAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace faircap {

/// Fixed-length bitset with word-level set algebra.
class Bitmap {
 public:
  Bitmap() : num_bits_(0) {}

  /// Creates `num_bits` bits, all clear (or all set).
  explicit Bitmap(size_t num_bits, bool value = false);

  size_t size() const { return num_bits_; }

  void Set(size_t i);
  void Clear(size_t i);
  bool Get(size_t i) const;
  bool operator[](size_t i) const { return Get(i); }

  /// Grows (or shrinks) to `new_bits`. New bits are clear; on growth the
  /// existing bits are untouched (the padding past the old size() is
  /// already zero, so whole-word growth is a plain vector resize). This is
  /// the append-path primitive: a resident mask extends to cover delta
  /// rows, then only the new tail words are scanned.
  void Resize(size_t new_bits);

  /// Number of set bits.
  size_t Count() const;

  /// Fused `(*this & other).Count()` without materializing the
  /// intersection — the workhorse of coverage/support counting, where only
  /// the cardinality of an overlap is needed. Sizes must match.
  size_t AndCount(const Bitmap& other) const;

  /// Fused `(copy of *this).AndNot(other).Count()`: set bits of `*this`
  /// not present in `other`. Sizes must match.
  size_t AndNotCount(const Bitmap& other) const;

  bool AllZero() const { return Count() == 0; }

  /// In-place intersection / union / difference with `other`.
  /// Sizes must match.
  Bitmap& operator&=(const Bitmap& other);
  Bitmap& operator|=(const Bitmap& other);
  Bitmap& AndNot(const Bitmap& other);

  Bitmap operator&(const Bitmap& other) const;
  Bitmap operator|(const Bitmap& other) const;
  /// Complement within [0, size).
  Bitmap operator~() const;

  bool operator==(const Bitmap& other) const;

  /// Indices of set bits, ascending.
  std::vector<uint32_t> ToIndices() const;

  /// Calls fn(i) for each set bit in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const int tz = __builtin_ctzll(bits);
        fn(w * 64 + static_cast<size_t>(tz));
        bits &= bits - 1;
      }
    }
  }

  /// Raw word storage (bit i of word w is row w*64+i). Padding bits past
  /// size() are always zero. The word-level view lets masked scans (e.g.
  /// the sufficient-statistics engine's subgroup slicing) walk several
  /// bitmaps in lockstep, 64 rows per load, skipping empty words.
  const uint64_t* words() const { return words_.data(); }
  size_t num_words() const { return words_.size(); }

  /// Writable word storage for kernel producers (the predicate compare
  /// scans fill whole mask words at a time). Writers must keep the
  /// padding bits past size() clear.
  uint64_t* mutable_words() { return words_.data(); }

  /// ORs `num_words` words of `src` into this bitmap starting at word
  /// `word_offset` — the shard-merge primitive: a shard's scan result
  /// (a word buffer covering only its word range) folds into the shared
  /// mask without materializing a full-size bitmap per shard. Word-aligned
  /// shards own disjoint ranges, so concurrent merges into one bitmap
  /// write different vector elements and need no locking. Bits past
  /// size() must be zero in `src`'s last word (padding stays clear).
  void OrWordsAt(size_t word_offset, const uint64_t* src, size_t num_words);

  /// Calls fn(i) for each bit set in both `*this` and `other`, ascending,
  /// without materializing the intersection. Sizes must match — checked in
  /// debug builds: this walks `other.words_` over *this*'s word count, so
  /// a mismatched bitmap (exactly what a buggy shard view would produce)
  /// would otherwise be a silent out-of-bounds read.
  template <typename Fn>
  void ForEachAnd(const Bitmap& other, Fn&& fn) const {
    assert(num_bits_ == other.num_bits_);
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w] & other.words_[w];
      while (bits != 0) {
        const int tz = __builtin_ctzll(bits);
        fn(w * 64 + static_cast<size_t>(tz));
        bits &= bits - 1;
      }
    }
  }

 private:
  void ClearPadding();

  size_t num_bits_;
  std::vector<uint64_t> words_;
};

}  // namespace faircap

#endif  // FAIRCAP_DATAFRAME_BITMAP_H_
