#include "util/random.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace faircap {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64 seeds the xoshiro state from a single 64-bit value.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) {
  return NextDouble() < p;
}

size_t Rng::NextCategorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  double x = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  for (size_t i = n; i > 1; --i) {
    const size_t j = NextBounded(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace faircap
