#include "util/threadpool.h"

#include <atomic>

namespace faircap {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Static chunking: one contiguous range per worker keeps scheduling
  // overhead negligible for the coarse-grained mining tasks we run.
  const size_t chunks = std::min(n, workers_.size() * 4);
  std::atomic<size_t> next_chunk{0};
  const size_t chunk_size = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    Submit([&, chunk_size, n] {
      for (;;) {
        const size_t chunk = next_chunk.fetch_add(1);
        const size_t begin = chunk * chunk_size;
        if (begin >= n) return;
        const size_t end = std::min(begin + chunk_size, n);
        for (size_t i = begin; i < end; ++i) fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace faircap
