// Status: lightweight error propagation for library code paths.
//
// FairCap follows the RocksDB/Arrow convention of returning a Status from
// every fallible operation instead of throwing exceptions. A Status is
// either OK or carries an error code plus a human-readable message.

#ifndef FAIRCAP_UTIL_STATUS_H_
#define FAIRCAP_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace faircap {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kIOError,
  kNotSupported,
  kInternal,
};

/// Result of a fallible operation: OK, or an error code with a message.
///
/// Usage:
///   Status s = df.AppendRow(row);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: unknown attribute 'age'".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kIOError: return "IOError";
      case StatusCode::kNotSupported: return "NotSupported";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller.
#define FAIRCAP_RETURN_NOT_OK(expr)              \
  do {                                           \
    ::faircap::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace faircap

#endif  // FAIRCAP_UTIL_STATUS_H_
