// Clang Thread Safety Analysis annotations. The macros attach the
// concurrency contracts that the runtime (TSan CI legs, pinning tests)
// can only sample to the declarations themselves, so an unguarded access
// to a mutex-protected field is a COMPILE error under Clang
// (-Wthread-safety -Werror=thread-safety, wired by cmake/ThreadSafety.cmake)
// instead of a probabilistic TSan report three PRs later.
//
// Conventions in this codebase:
//   * every field whose invariant a mutex protects carries GUARDED_BY(mu);
//   * helpers named ...Locked() carry REQUIRES(mu) — the caller holds the
//     lock; the analysis verifies every call site;
//   * functions documented "caller must NOT hold mu" carry EXCLUDES(mu);
//   * locks are faircap::Mutex / faircap::MutexLock / faircap::CondVar
//     (util/sync.h) — std::mutex carries no capability attributes in
//     libstdc++, so the analysis cannot see std::lock_guard acquisitions.
//
// On compilers without the attributes (GCC) every macro expands to
// nothing; the annotations are contracts, not code.

#ifndef FAIRCAP_UTIL_THREAD_ANNOTATIONS_H_
#define FAIRCAP_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define FAIRCAP_THREAD_ATTRIBUTE__(x) __attribute__((x))
#else
#define FAIRCAP_THREAD_ATTRIBUTE__(x)  // no-op on non-Clang compilers
#endif

/// Declares a type to be a lockable capability ("mutex").
#define CAPABILITY(x) FAIRCAP_THREAD_ATTRIBUTE__(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define SCOPED_CAPABILITY FAIRCAP_THREAD_ATTRIBUTE__(scoped_lockable)

/// Field or variable is protected by the given capability; reads and
/// writes require holding it.
#define GUARDED_BY(x) FAIRCAP_THREAD_ATTRIBUTE__(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given capability.
#define PT_GUARDED_BY(x) FAIRCAP_THREAD_ATTRIBUTE__(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (the
/// ...Locked() helper convention).
#define REQUIRES(...) \
  FAIRCAP_THREAD_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Function requires the listed capabilities to be held in shared mode.
#define REQUIRES_SHARED(...) \
  FAIRCAP_THREAD_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the listed capabilities and holds them on return.
#define ACQUIRE(...) \
  FAIRCAP_THREAD_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry).
#define RELEASE(...) \
  FAIRCAP_THREAD_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function attempts acquisition; holds the capability iff it returned
/// the given value.
#define TRY_ACQUIRE(...) \
  FAIRCAP_THREAD_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held
/// (deadlock prevention for functions that acquire them internally).
#define EXCLUDES(...) FAIRCAP_THREAD_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define RETURN_CAPABILITY(x) FAIRCAP_THREAD_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the contract holds anyway.
#define NO_THREAD_SAFETY_ANALYSIS \
  FAIRCAP_THREAD_ATTRIBUTE__(no_thread_safety_analysis)

/// Assertion that the calling thread already holds the capability (for
/// run-time-checked entry points the analysis cannot prove).
#define ASSERT_CAPABILITY(x) \
  FAIRCAP_THREAD_ATTRIBUTE__(assert_capability(x))

#endif  // FAIRCAP_UTIL_THREAD_ANNOTATIONS_H_
