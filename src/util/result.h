// Result<T>: value-or-Status, the library's analogue of arrow::Result.

#ifndef FAIRCAP_UTIL_RESULT_H_
#define FAIRCAP_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace faircap {

/// Holds either a value of type T or an error Status.
///
/// Usage:
///   Result<DataFrame> r = ReadCsv(path, schema);
///   if (!r.ok()) return r.status();
///   DataFrame df = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit by design, mirroring arrow::Result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT

  /// Constructs from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; the Result must be OK.
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value if OK, otherwise `fallback`.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error Result, otherwise assigns its value to `lhs`.
#define FAIRCAP_ASSIGN_OR_RETURN(lhs, expr)           \
  auto FAIRCAP_CONCAT_(_res_, __LINE__) = (expr);     \
  if (!FAIRCAP_CONCAT_(_res_, __LINE__).ok())         \
    return FAIRCAP_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(FAIRCAP_CONCAT_(_res_, __LINE__)).ValueOrDie()

#define FAIRCAP_CONCAT_(a, b) FAIRCAP_CONCAT_IMPL_(a, b)
#define FAIRCAP_CONCAT_IMPL_(a, b) a##b

}  // namespace faircap

#endif  // FAIRCAP_UTIL_RESULT_H_
