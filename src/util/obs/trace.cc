#include "util/obs/trace.h"

#include <chrono>
#include <fstream>
#include <memory>
#include <ostream>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace faircap {
namespace obs {

namespace internal {

std::atomic<bool> g_tracing_enabled{false};

namespace {

using Clock = std::chrono::steady_clock;

/// Epoch of the current tracing session. Written by EnableTracing before
/// the enabled flag flips, read by recording threads after they observe
/// the flag — the flag's load/store pair orders the accesses in practice,
/// and an early read before the first Enable just yields offsets from
/// process start, still monotone within a session.
std::atomic<int64_t> g_epoch_ns{0};

/// One thread's span buffer. Owned jointly by the thread (thread_local
/// handle) and the global registry, so events survive thread exit until
/// the flush reads them.
struct ThreadTrace {
  uint32_t tid = 0;
  /// Set by SetThreadTraceName, may be empty. Guarded by the registry's
  /// mu (readers in WriteChromeTrace hold it; the writer takes it too) —
  /// spelled as a comment because the guarding mutex lives in a different
  /// struct, outside GUARDED_BY's reach.
  std::string name;
  /// Deliberately unguarded: appended only by the owning thread, read by
  /// the flush only after every recording thread has quiesced (the
  /// scheduler joins its workers before the CLI writes the trace). A
  /// mutex here would put a lock on every span record.
  std::vector<TraceEvent> events;
};

struct TraceRegistry {
  Mutex mu;
  std::vector<std::shared_ptr<ThreadTrace>> threads GUARDED_BY(mu);
  uint32_t next_tid GUARDED_BY(mu) = 1;
};

TraceRegistry& Registry() {
  static TraceRegistry* registry = new TraceRegistry();
  return *registry;
}

/// The calling thread's buffer, registered on first use. The shared_ptr
/// copy in the registry keeps the buffer alive after the thread exits.
ThreadTrace& LocalTrace() {
  thread_local std::shared_ptr<ThreadTrace> local = [] {
    auto trace = std::make_shared<ThreadTrace>();
    TraceRegistry& reg = Registry();
    MutexLock lock(reg.mu);
    trace->tid = reg.next_tid++;
    reg.threads.push_back(trace);
    return trace;
  }();
  return *local;
}

}  // namespace

uint64_t TraceNowNs() {
  const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          Clock::now().time_since_epoch())
                          .count();
  const int64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);
  return now > epoch ? static_cast<uint64_t>(now - epoch) : 0;
}

void RecordTraceEvent(const char* name, uint64_t start_ns, uint64_t dur_ns,
                      int64_t arg) {
  LocalTrace().events.push_back(TraceEvent{name, start_ns, dur_ns, arg});
}

}  // namespace internal

void EnableTracing() {
  ClearTrace();
  internal::g_epoch_ns.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          internal::Clock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);
  internal::g_tracing_enabled.store(true, std::memory_order_release);
}

void DisableTracing() {
  internal::g_tracing_enabled.store(false, std::memory_order_release);
}

void ClearTrace() {
  internal::TraceRegistry& reg = internal::Registry();
  MutexLock lock(reg.mu);
  // Thread names persist (they describe the thread, not the session);
  // events belong to the session and go.
  for (auto& thread : reg.threads) thread->events.clear();
}

void SetThreadTraceName(const std::string& name) {
  // Name it through the registry lock: WriteChromeTrace reads names under
  // reg.mu, and a worker naming itself while another thread flushes the
  // trace would otherwise race on the string. Cold path (once per thread).
  internal::ThreadTrace& trace = internal::LocalTrace();
  internal::TraceRegistry& reg = internal::Registry();
  MutexLock lock(reg.mu);
  trace.name = name;
}

size_t TraceEventCount() {
  internal::TraceRegistry& reg = internal::Registry();
  MutexLock lock(reg.mu);
  size_t count = 0;
  for (const auto& thread : reg.threads) count += thread->events.size();
  return count;
}

void WriteChromeTrace(std::ostream& out) {
  internal::TraceRegistry& reg = internal::Registry();
  MutexLock lock(reg.mu);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out << ",";
    first = false;
  };
  const char* const pid = "1";
  for (const auto& thread : reg.threads) {
    if (thread->events.empty()) continue;
    if (!thread->name.empty()) {
      comma();
      out << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << thread->tid
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      // Thread names are code-chosen identifiers; escape defensively.
      for (const char c : thread->name) {
        if (c == '"' || c == '\\') out << '\\';
        out << c;
      }
      out << "\"}}";
    }
    for (const internal::TraceEvent& event : thread->events) {
      comma();
      // Chrome trace timestamps are microseconds; keep ns precision via
      // the fractional part.
      out << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << thread->tid
          << ",\"ts\":" << static_cast<double>(event.start_ns) / 1e3
          << ",\"dur\":" << static_cast<double>(event.dur_ns) / 1e3
          << ",\"name\":\"" << event.name << "\"";
      if (event.arg >= 0) out << ",\"args\":{\"v\":" << event.arg << "}";
      out << "}";
    }
  }
  out << "]}";
}

Status WriteChromeTraceFile(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  WriteChromeTrace(out);
  out << "\n";
  if (!out) return Status::Internal("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace obs
}  // namespace faircap
