// Machine-readable run report: one stable JSON schema that serializes the
// full metrics registry plus per-phase wall times — the paper's Figure-3
// per-step runtime breakdown, produced by the production path (FairCap
// sets the phase.* gauges as it runs) instead of bench-only stopwatch
// code. `faircap_cli run --metrics-json=FILE` writes it; the bench_*
// harnesses and the CI observability smoke read phase timings and cache
// stats from the same registry the library incremented, so there is no
// second bookkeeping path to drift.
//
// Schema (v1) — top-level keys, all always present:
//   {
//     "schema": "faircap.run_report.v1",
//     "phase":        { "<phase>_seconds": <double>, ... },
//     "scheduler":    { workers, instances, submitted, executed,
//                       stolen, helped },
//     "index_cache":  { hits, misses, evictions, atom_evictions,
//                       warm_atom_masks, atom_bytes, conjunction_bytes,
//                       numeric_order_bytes },
//     "engine_cache": { hits, misses, evictions, bytes },
//     "ingest":       { runs, rows, bytes, chunks, segments },
//     "simd":         { level, level_name },
//     "estimation":   { legacy_calls, batch_evals, solve_regression,
//                       solve_stratified, solve_ipw_cells,
//                       solve_ipw_rows },
//     "mining":       { lattice_evaluations, pattern_tasks, ... }
//   }
// Extra metrics registered by future subsystems appear as extra keys /
// sections; the keys above are the floor, pinned by tests/obs_test.cc.

#ifndef FAIRCAP_UTIL_OBS_RUN_REPORT_H_
#define FAIRCAP_UTIL_OBS_RUN_REPORT_H_

#include <iosfwd>
#include <string>

#include "util/status.h"

namespace faircap {
namespace obs {

/// Phase-gauge names (the "phase." prefix groups them into the report's
/// "phase" section). FairCap::Run sets the three step gauges and total;
/// callers that ingest data first set kPhaseIngest.
inline constexpr const char* kPhaseIngest = "phase.ingest_seconds";
inline constexpr const char* kPhaseGroupMining = "phase.group_mining_seconds";
inline constexpr const char* kPhaseTreatmentMining =
    "phase.treatment_mining_seconds";
inline constexpr const char* kPhaseSelection = "phase.selection_seconds";
inline constexpr const char* kPhaseTotal = "phase.total_seconds";

/// Registers the schema-floor metrics (zero-valued if never incremented)
/// so every run report carries the full v1 key set no matter which
/// subsystems actually ran. Idempotent and cheap; the report writer calls
/// it, and subsystems that increment these same names simply resolve the
/// already-registered handles.
void EnsureStandardMetricsRegistered();

/// Writes the run report JSON (schema above) from the global registry.
void WriteRunReport(std::ostream& out);

/// WriteRunReport to a file.
Status WriteRunReportFile(const std::string& path);

}  // namespace obs
}  // namespace faircap

#endif  // FAIRCAP_UTIL_OBS_RUN_REPORT_H_
