// Process-global metrics registry: named monotonic counters, gauges, and
// log2-bucketed histograms that every subsystem increments directly —
// scheduler task counts, PredicateIndex cache hits, engine-cache traffic,
// ingest rows, SIMD tier, per-estimation-method call splits. One registry
// is the single sink the CLI run report, the bench harnesses, and CI
// artifacts all read, so there are never bench-only shadow counters that
// can drift from what the library actually did.
//
// Hot-path contract: a metric handle (`Counter&`, `Gauge&`, `Histogram&`)
// is resolved ONCE (typically into a function-local static) and then
// updated with a single relaxed atomic op. Handles stay valid for the
// process lifetime — Reset() zeroes values in place and never invalidates
// a handle. Names follow "section.metric"; the run report groups by the
// section prefix (util/obs/run_report.h).

#ifndef FAIRCAP_UTIL_OBS_METRICS_H_
#define FAIRCAP_UTIL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace faircap {
namespace obs {

/// Monotonic counter. Relaxed increments: exact totals, no ordering.
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (bytes held, worker count, phase
/// wall seconds). Doubles cover both byte counts (exact to 2^53) and
/// timings.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }
  std::atomic<double> value_{0.0};
};

/// Power-of-two bucketed histogram for duration-like values. Bucket b
/// counts observations in (2^(b-1), 2^b] (bucket 0: <= 1). Relaxed
/// per-bucket counters, so concurrent Observe() calls are exact in total.
class Histogram {
 public:
  static constexpr size_t kBuckets = 40;

  void Observe(double value);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Histogram() = default;
  void Reset();
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};  // relaxed CAS-add; exact enough for report
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// The process-global registry. GetX() interns the name on first request
/// and returns a stable reference; subsequent lookups are a mutex-guarded
/// hash probe, which is why call sites cache the handle in a static.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Snapshot accessors (0 / empty histogram when the name was never
  /// registered). For tests and report writers.
  uint64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;

  /// Zeroes every registered metric IN PLACE: outstanding handles stay
  /// valid and simply observe the new zero. Tests isolate themselves with
  /// this; the CLI never calls it (one run per process).
  void Reset();

  /// Serializes the registry as one JSON object grouped by section
  /// ("section.metric" -> {"section": {"metric": value}}). Counters emit
  /// integers, gauges doubles, histograms {"count","sum","buckets"}
  /// objects. Sections and metrics are sorted, so the output is stable
  /// for a given set of registered names.
  void WriteJson(std::ostream& out) const;

  /// Registered names of each kind, sorted (schema tests).
  std::vector<std::string> CounterNames() const;
  std::vector<std::string> GaugeNames() const;

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace obs
}  // namespace faircap

#endif  // FAIRCAP_UTIL_OBS_METRICS_H_
