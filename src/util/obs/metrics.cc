#include "util/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace faircap {
namespace obs {

void Histogram::Observe(double value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  // Relaxed CAS-add keeps the sum exact under concurrency (fetch_add on
  // atomic<double> is C++20; this is the portable C++17 spelling).
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
  size_t b = 0;
  if (value > 1.0) {
    b = static_cast<size_t>(std::ceil(std::log2(value)));
    if (b >= kBuckets) b = kBuckets - 1;
  }
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

struct MetricsRegistry::Impl {
  mutable Mutex mu;
  // Heap-allocated metrics owned by the deques: handed-out references
  // stay valid as the registry grows, and the atomic members (which make
  // the types immovable) never need to relocate. The registration state
  // is guarded by mu; the metric objects themselves are atomic and are
  // deliberately updated lock-free through the handed-out references.
  std::deque<std::unique_ptr<Counter>> counters GUARDED_BY(mu);
  std::deque<std::unique_ptr<Gauge>> gauges GUARDED_BY(mu);
  std::deque<std::unique_ptr<Histogram>> histograms GUARDED_BY(mu);
  std::unordered_map<std::string, Counter*> counter_by_name GUARDED_BY(mu);
  std::unordered_map<std::string, Gauge*> gauge_by_name GUARDED_BY(mu);
  std::unordered_map<std::string, Histogram*> histogram_by_name GUARDED_BY(mu);
};

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: metrics handles are cached in static locals all
  // over the library and may be touched during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  Impl& i = impl();
  MutexLock lock(i.mu);
  auto it = i.counter_by_name.find(name);
  if (it != i.counter_by_name.end()) return *it->second;
  i.counters.emplace_back(new Counter());
  i.counter_by_name.emplace(name, i.counters.back().get());
  return *i.counters.back();
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  Impl& i = impl();
  MutexLock lock(i.mu);
  auto it = i.gauge_by_name.find(name);
  if (it != i.gauge_by_name.end()) return *it->second;
  i.gauges.emplace_back(new Gauge());
  i.gauge_by_name.emplace(name, i.gauges.back().get());
  return *i.gauges.back();
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  Impl& i = impl();
  MutexLock lock(i.mu);
  auto it = i.histogram_by_name.find(name);
  if (it != i.histogram_by_name.end()) return *it->second;
  i.histograms.emplace_back(new Histogram());
  i.histogram_by_name.emplace(name, i.histograms.back().get());
  return *i.histograms.back();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  Impl& i = impl();
  MutexLock lock(i.mu);
  const auto it = i.counter_by_name.find(name);
  return it == i.counter_by_name.end() ? 0 : it->second->value();
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  Impl& i = impl();
  MutexLock lock(i.mu);
  const auto it = i.gauge_by_name.find(name);
  return it == i.gauge_by_name.end() ? 0.0 : it->second->value();
}

void MetricsRegistry::Reset() {
  Impl& i = impl();
  MutexLock lock(i.mu);
  for (auto& c : i.counters) c->Reset();
  for (auto& g : i.gauges) g->Reset();
  for (auto& h : i.histograms) h->Reset();
}

namespace {

/// JSON-escapes a metric name (names are plain identifiers in practice,
/// but the writer must never emit malformed JSON).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Splits "section.metric" at the first dot ("" section when none).
std::pair<std::string, std::string> SplitSection(const std::string& name) {
  const size_t dot = name.find('.');
  if (dot == std::string::npos) return {"", name};
  return {name.substr(0, dot), name.substr(dot + 1)};
}

}  // namespace

void MetricsRegistry::WriteJson(std::ostream& out) const {
  Impl& i = impl();
  MutexLock lock(i.mu);
  // section -> metric -> rendered JSON value, both levels sorted by the
  // std::map so the emitted schema is stable.
  std::map<std::string, std::map<std::string, std::string>> sections;
  for (const auto& [name, counter] : i.counter_by_name) {
    const auto [section, metric] = SplitSection(name);
    sections[section][metric] = std::to_string(counter->value());
  }
  for (const auto& [name, gauge] : i.gauge_by_name) {
    const auto [section, metric] = SplitSection(name);
    sections[section][metric] = JsonDouble(gauge->value());
  }
  for (const auto& [name, hist] : i.histogram_by_name) {
    const auto [section, metric] = SplitSection(name);
    std::ostringstream os;
    os << "{\"count\":" << hist->count()
       << ",\"sum\":" << JsonDouble(hist->sum()) << ",\"buckets\":[";
    // Emit up to the last non-empty bucket; trailing zeros carry nothing.
    size_t last = 0;
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (hist->bucket(b) != 0) last = b + 1;
    }
    for (size_t b = 0; b < last; ++b) {
      os << (b == 0 ? "" : ",") << hist->bucket(b);
    }
    os << "]}";
    sections[section][metric] = os.str();
  }
  out << "{";
  bool first_section = true;
  for (const auto& [section, metrics] : sections) {
    if (!first_section) out << ",";
    first_section = false;
    out << "\"" << JsonEscape(section) << "\":{";
    bool first_metric = true;
    for (const auto& [metric, value] : metrics) {
      if (!first_metric) out << ",";
      first_metric = false;
      out << "\"" << JsonEscape(metric) << "\":" << value;
    }
    out << "}";
  }
  out << "}";
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  Impl& i = impl();
  MutexLock lock(i.mu);
  std::vector<std::string> names;
  names.reserve(i.counter_by_name.size());
  for (const auto& [name, counter] : i.counter_by_name) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> MetricsRegistry::GaugeNames() const {
  Impl& i = impl();
  MutexLock lock(i.mu);
  std::vector<std::string> names;
  names.reserve(i.gauge_by_name.size());
  for (const auto& [name, gauge] : i.gauge_by_name) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace obs
}  // namespace faircap
