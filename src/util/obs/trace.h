// Span tracer: RAII scopes recorded into lock-free per-thread buffers and
// flushed at run end as Chrome trace-event JSON, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing. A whole pipeline run — ingest
// segments, index warm-start, per-pattern lattice evaluation, per-shard
// accumulation tasks, greedy selection — lands on one timeline with a
// track per thread (scheduler workers name their tracks "worker-N").
//
// Cost contract: with tracing disabled (the default) constructing a
// TraceSpan is one relaxed atomic load and a branch — no clock read, no
// allocation, nothing written — so production hot paths stay within noise
// of uninstrumented code. With tracing enabled each span costs two
// steady_clock reads and one push_back into a thread-local vector; no
// locks are taken after a thread's first event.
//
// Span names must be string literals (static storage): the tracer stores
// the pointer, not a copy. Variable identity (pattern index, shard id)
// goes in the integer arg, emitted as "args":{"v":N}.
//
// Flush protocol: WriteChromeTrace() must not race live span writers.
// The pipeline satisfies this by construction — the CLI flushes after
// FairCap::Run() returns, which destroys (joins) the scheduler first.

#ifndef FAIRCAP_UTIL_OBS_TRACE_H_
#define FAIRCAP_UTIL_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "util/status.h"

namespace faircap {
namespace obs {

namespace internal {

extern std::atomic<bool> g_tracing_enabled;

struct TraceEvent {
  const char* name;    ///< string literal
  uint64_t start_ns;   ///< since the tracing epoch
  uint64_t dur_ns;
  int64_t arg;         ///< -1 = none
};

/// Nanoseconds since the tracing epoch (set by EnableTracing).
uint64_t TraceNowNs();

/// Appends one completed span to the calling thread's buffer.
void RecordTraceEvent(const char* name, uint64_t start_ns, uint64_t dur_ns,
                      int64_t arg);

}  // namespace internal

/// Whether spans are being recorded. The one check on every hot path.
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Starts recording: resets the epoch, drops events from any previous
/// session, and flips the enabled flag.
void EnableTracing();

/// Stops recording; buffered events stay available for WriteChromeTrace.
void DisableTracing();

/// Drops all buffered events and thread-name registrations.
void ClearTrace();

/// Names the calling thread's track in the emitted trace ("worker-3",
/// "main", "ingest-0"). Cheap and callable regardless of enablement; the
/// name sticks for the thread's lifetime.
void SetThreadTraceName(const std::string& name);

/// Total buffered span events across all threads (tests; takes the
/// registry lock — do not call from hot paths).
size_t TraceEventCount();

/// Emits the buffered events as Chrome trace-event JSON: one "X"
/// (complete) event per span with microsecond timestamps, plus
/// "thread_name" metadata so Perfetto labels each track. Caller must
/// ensure no thread is concurrently recording (join workers first).
void WriteChromeTrace(std::ostream& out);

/// WriteChromeTrace to a file.
Status WriteChromeTraceFile(const std::string& path);

/// RAII span. The constructor samples the clock only when tracing is
/// enabled; the destructor records the completed event. Enablement is
/// latched at construction, so a span that straddles DisableTracing still
/// records (into a buffer nobody will flush until re-enabled — harmless).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : TraceSpan(name, -1) {}
  TraceSpan(const char* name, int64_t arg) {
    if (TracingEnabled()) {
      name_ = name;
      arg_ = arg;
      start_ns_ = internal::TraceNowNs();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      const uint64_t end_ns = internal::TraceNowNs();
      internal::RecordTraceEvent(name_, start_ns_,
                                 end_ns - start_ns_, arg_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  ///< null = tracing was off at construction
  uint64_t start_ns_ = 0;
  int64_t arg_ = -1;
};

}  // namespace obs
}  // namespace faircap

#endif  // FAIRCAP_UTIL_OBS_TRACE_H_
