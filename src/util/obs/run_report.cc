#include "util/obs/run_report.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/obs/metrics.h"
#include "util/simd/simd.h"

namespace faircap {
namespace obs {

namespace {

/// The v1 schema floor. Every name here exists (possibly zero-valued) in
/// every report, so downstream parsers — CI validation, the bench
/// harnesses, dashboards — can index unconditionally.
constexpr const char* kStandardCounters[] = {
    "scheduler.instances",
    "scheduler.submitted",
    "scheduler.executed",
    "scheduler.stolen",
    "scheduler.helped",
    "index_cache.hits",
    "index_cache.misses",
    "index_cache.evictions",
    "index_cache.atom_evictions",
    "index_cache.warm_atom_masks",
    "engine_cache.hits",
    "engine_cache.misses",
    "engine_cache.evictions",
    "ingest.runs",
    "ingest.rows",
    "ingest.bytes",
    "ingest.chunks",
    "ingest.segments",
    "estimation.legacy_calls",
    "estimation.batch_evals",
    "estimation.solve_regression",
    "estimation.solve_stratified",
    "estimation.solve_ipw_cells",
    "estimation.solve_ipw_rows",
    "estimation.accumulate_path_int",
    "estimation.accumulate_path_fp_staged",
    "estimation.accumulate_path_sparse",
    "estimation.accumulate_int_fallbacks",
    "mining.lattice_evaluations",
    "mining.pattern_tasks",
    "simd.cate_accumulate_rows",
    // Incremental append + delta-aware re-mining (core/incremental.h,
    // dataframe/predicate_index.h, causal/estimator.h).
    "append.rows_appended",
    "append.batches",
    "append.masks_extended",
    "append.masks_rebuilt",
    "append.orders_merged",
    "append.partitions_extended",
    "append.partitions_rebuilt",
    "append.engines_extended",
    "append.engines_rebuilt",
    "append.patterns_reused",
    "append.patterns_rechecked",
    "append.evals_cached",
    "append.evals_delta",
    "append.evals_full",
    "append.full_remines",
};

constexpr const char* kStandardGauges[] = {
    kPhaseIngest,
    kPhaseGroupMining,
    kPhaseTreatmentMining,
    kPhaseSelection,
    kPhaseTotal,
    "scheduler.workers",
    "index_cache.atom_bytes",
    "index_cache.conjunction_bytes",
    "index_cache.numeric_order_bytes",
    "engine_cache.bytes",
    "simd.level",
};

}  // namespace

void EnsureStandardMetricsRegistered() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (const char* name : kStandardCounters) registry.GetCounter(name);
  for (const char* name : kStandardGauges) registry.GetGauge(name);
}

void WriteRunReport(std::ostream& out) {
  EnsureStandardMetricsRegistered();
  MetricsRegistry& registry = MetricsRegistry::Global();
  // Body: the registry's section-grouped JSON, with the schema marker and
  // the human-readable SIMD tier name spliced in. The registry output is
  // "{...}"; splice after the opening brace so "schema" leads and the
  // "simd" section (guaranteed present by the floor above) gains
  // "level_name" next to its numeric "level".
  std::ostringstream body;
  registry.WriteJson(body);
  std::string json = body.str();
  const std::string simd_key = "\"simd\":{";
  const size_t simd_at = json.find(simd_key);
  if (simd_at != std::string::npos) {
    const auto level = static_cast<simd::SimdLevel>(
        static_cast<int>(registry.GaugeValue("simd.level")));
    std::string name = "unknown";
    if (level >= simd::SimdLevel::kScalar &&
        level <= simd::SimdLevel::kAvx512) {
      name = simd::SimdLevelName(level);
    }
    json.insert(simd_at + simd_key.size(),
                "\"level_name\":\"" + name + "\",");
  }
  out << "{\"schema\":\"faircap.run_report.v1\"," << json.substr(1);
}

Status WriteRunReportFile(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  WriteRunReport(out);
  out << "\n";
  if (!out) return Status::Internal("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace obs
}  // namespace faircap
