// Deterministic pseudo-random number generation for data synthesis and
// sampling. All experiment code seeds explicitly so runs are reproducible.

#ifndef FAIRCAP_UTIL_RANDOM_H_
#define FAIRCAP_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace faircap {

/// Deterministic RNG (xoshiro256**) with convenience samplers.
///
/// std::mt19937 distributions are not guaranteed identical across standard
/// library implementations; this class owns both the generator and the
/// distribution math so every platform produces the same streams.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Uniform in [0, 2^64).
  uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller; mean 0, stddev 1.
  double NextGaussian();

  /// Normal with the given mean and stddev.
  double NextGaussian(double mean, double stddev);

  /// True with probability p.
  bool NextBernoulli(double p);

  /// Index sampled according to `weights` (non-negative, not all zero).
  size_t NextCategorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of [0, n) indices.
  std::vector<size_t> Permutation(size_t n);

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace faircap

#endif  // FAIRCAP_UTIL_RANDOM_H_
