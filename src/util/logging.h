// Minimal leveled logging to stderr. Verbosity is process-global and off by
// default so library code stays silent unless a harness opts in.

#ifndef FAIRCAP_UTIL_LOGGING_H_
#define FAIRCAP_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>

namespace faircap {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace internal {

inline LogLevel& GlobalLogLevel() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

/// Stream that emits a single line on destruction if enabled.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << Name(level) << " " << file << ":" << line << "] ";
  }
  ~LogMessage() {
    if (level_ >= GlobalLogLevel()) {
      stream_ << "\n";
      std::cerr << stream_.str();
    }
  }
  std::ostream& stream() { return stream_; }

 private:
  static const char* Name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
  }
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Sets the minimum level that is actually emitted.
inline void SetLogLevel(LogLevel level) {
  internal::GlobalLogLevel() = level;
}

#define FAIRCAP_LOG(level)                                              \
  ::faircap::internal::LogMessage(::faircap::LogLevel::k##level,        \
                                  __FILE__, __LINE__)                   \
      .stream()

}  // namespace faircap

#endif  // FAIRCAP_UTIL_LOGGING_H_
