// Minimal leveled logging to stderr. Verbosity is process-global and off by
// default so library code stays silent unless a harness opts in — either
// programmatically (SetLogLevel), via the CLI's --log-level= flag, or via
// the FAIRCAP_LOG environment variable (InitLogLevelFromEnv).

#ifndef FAIRCAP_UTIL_LOGGING_H_
#define FAIRCAP_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace faircap {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace internal {

inline LogLevel& GlobalLogLevel() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

/// Stream that emits a single line on destruction if enabled.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << Name(level) << " " << file << ":" << line << "] ";
  }
  ~LogMessage() {
    if (level_ >= GlobalLogLevel()) {
      stream_ << "\n";
      std::cerr << stream_.str();
    }
  }
  std::ostream& stream() { return stream_; }

 private:
  static const char* Name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
  }
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Sets the minimum level that is actually emitted.
inline void SetLogLevel(LogLevel level) {
  internal::GlobalLogLevel() = level;
}

/// Parses "debug" / "info" / "warn" / "error" (the --log-level= and
/// FAIRCAP_LOG spellings). Returns false on an unknown name (level is
/// untouched).
inline bool ParseLogLevel(const std::string& name, LogLevel* level) {
  if (name == "debug") {
    *level = LogLevel::kDebug;
  } else if (name == "info") {
    *level = LogLevel::kInfo;
  } else if (name == "warn" || name == "warning") {
    *level = LogLevel::kWarn;
  } else if (name == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

/// Applies the FAIRCAP_LOG environment variable if set and valid; an
/// unknown spelling leaves the level alone and warns (on stderr — the
/// logger itself might be set to suppress warnings). Harness entry points
/// call this once at startup; explicit flags override it afterwards.
inline void InitLogLevelFromEnv() {
  // Startup-only, before any worker thread exists; no setenv in-process.
  const char* env = std::getenv("FAIRCAP_LOG");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr || *env == '\0') return;
  LogLevel level;
  if (ParseLogLevel(env, &level)) {
    SetLogLevel(level);
  } else {
    std::cerr << "[WARN] FAIRCAP_LOG='" << env
              << "' not recognized (want debug|info|warn|error); ignored\n";
  }
}

#define FAIRCAP_LOG(level)                                              \
  ::faircap::internal::LogMessage(::faircap::LogLevel::k##level,        \
                                  __FILE__, __LINE__)                   \
      .stream()

namespace internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::cerr << "[CHECK failed " << file << ":" << line << "] " << expr
            << "\n";
  std::abort();
}

}  // namespace internal

/// Hard invariant check, enabled in all build types (unlike assert): a
/// violated invariant aborts with the failing expression rather than
/// silently serving wrong data. Used to guard contracts whose violation
/// would corrupt results — e.g. a stale index/engine cache entry being
/// served after an append.
#define FAIRCAP_CHECK(expr)                                             \
  ((expr) ? (void)0                                                    \
          : ::faircap::internal::CheckFailed(#expr, __FILE__, __LINE__))

}  // namespace faircap

#endif  // FAIRCAP_UTIL_LOGGING_H_
