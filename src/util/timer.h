// Wall-clock timing used by the benchmark harnesses and the per-step
// runtime breakdown (Figure 3 of the paper).

#ifndef FAIRCAP_UTIL_TIMER_H_
#define FAIRCAP_UTIL_TIMER_H_

#include <chrono>

namespace faircap {

/// Monotonic stopwatch. Starts on construction; Restart() resets.
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace faircap

#endif  // FAIRCAP_UTIL_TIMER_H_
