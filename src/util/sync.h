// Annotated synchronization primitives for Clang Thread Safety Analysis.
//
// std::mutex / std::condition_variable carry no capability attributes in
// libstdc++, so the analysis cannot connect a std::lock_guard to the
// fields it protects. These thin wrappers add zero runtime cost (every
// method is an inline forward) but give the analysis the ACQUIRE/RELEASE
// edges it needs. All mutex-protected state in this codebase uses
// faircap::Mutex + GUARDED_BY; see util/thread_annotations.h for the
// conventions.
//
// CondVar::Wait deliberately takes the Mutex by reference instead of a
// std::unique_lock: the analysis tracks the capability on the Mutex
// object, and the adopt/release dance below keeps the underlying
// std::condition_variable::wait semantics (atomic unlock-sleep-relock)
// intact.

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace faircap {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // The raw std::mutex, for interop with std:: wait machinery (CondVar
  // below). Callers must not lock/unlock through it directly — that
  // would bypass the analysis.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// RAII lock holder, the std::lock_guard / std::unique_lock replacement.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Early release (unlock-before-scope-end), e.g. to drop the lock
  // before notifying or before running expensive work.
  void Release() RELEASE() {
    mu_.Unlock();
    held_ = false;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

// Condition variable bound to faircap::Mutex. Waits require the caller
// to hold the mutex — enforced by the analysis via REQUIRES.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, sleeps, and re-acquires before returning.
  void Wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    // Adopt the already-held lock so std::condition_variable can do its
    // atomic unlock-and-sleep; release() hands ownership back to the
    // caller's MutexLock without unlocking. Net capability change: none,
    // which is exactly what REQUIRES(mu) promises.
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  template <class Rep, class Period>
  // Returns false iff the wait timed out.
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& d)
      REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    std::cv_status st = cv_.wait_for(lk, d);
    lk.release();
    return st;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace faircap
