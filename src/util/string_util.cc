#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace faircap {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars<double> is not available in all libstdc++ versions we
  // target, so go through a bounded copy + strtod.
  char buf[64];
  if (s.size() >= sizeof(buf)) return false;
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* endp = nullptr;
  const double v = std::strtod(buf, &endp);
  if (endp != buf + s.size()) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = v;
  return true;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace faircap
