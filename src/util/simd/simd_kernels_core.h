// Internal: portable kernel bodies shared by the per-ISA translation
// units. The scalar tier uses these as THE implementation; the AVX2 and
// AVX-512 tiers use them for word tails and for the per-row statistic
// adds of the accumulation kernel.
//
// The accumulation core is the determinism anchor of the whole layer: it
// performs every floating-point add in ascending row order with the same
// associations as the original CateStatsEngine scalar loop. Vector tiers
// may prepare lanes (cell indices, arm bits) with SIMD, but the adds into
// the per-(cell, arm) slots always run through AddRow below — consecutive
// rows can land in the SAME slot, so a vectorized scatter-add would both
// race with itself and reassociate the sums.

#ifndef FAIRCAP_UTIL_SIMD_SIMD_KERNELS_CORE_H_
#define FAIRCAP_UTIL_SIMD_SIMD_KERNELS_CORE_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "util/simd/simd.h"

namespace faircap {
namespace simd {
namespace core {

inline size_t ScalarPopcount(const uint64_t* words, size_t num_words) {
  size_t n = 0;
  for (size_t i = 0; i < num_words; ++i) {
    n += static_cast<size_t>(__builtin_popcountll(words[i]));
  }
  return n;
}

inline size_t ScalarAndCount(const uint64_t* a, const uint64_t* b,
                             size_t num_words) {
  size_t n = 0;
  for (size_t i = 0; i < num_words; ++i) {
    n += static_cast<size_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return n;
}

inline size_t ScalarAndNotCount(const uint64_t* a, const uint64_t* b,
                                size_t num_words) {
  size_t n = 0;
  for (size_t i = 0; i < num_words; ++i) {
    n += static_cast<size_t>(__builtin_popcountll(a[i] & ~b[i]));
  }
  return n;
}

inline void ScalarAndInplace(uint64_t* a, const uint64_t* b,
                             size_t num_words) {
  for (size_t i = 0; i < num_words; ++i) a[i] &= b[i];
}

inline void ScalarOrInplace(uint64_t* a, const uint64_t* b,
                            size_t num_words) {
  for (size_t i = 0; i < num_words; ++i) a[i] |= b[i];
}

inline void ScalarAndNotInplace(uint64_t* a, const uint64_t* b,
                                size_t num_words) {
  for (size_t i = 0; i < num_words; ++i) a[i] &= ~b[i];
}

// One mask word (up to 64 rows) of the categorical compare scans.
inline uint64_t CodesEqWord(const int32_t* codes, size_t rows, int32_t code) {
  uint64_t word = 0;
  for (size_t i = 0; i < rows; ++i) {
    word |= static_cast<uint64_t>(codes[i] == code) << i;
  }
  return word;
}

inline uint64_t CodesNeWord(const int32_t* codes, size_t rows,
                            int32_t null_code, int32_t code) {
  uint64_t word = 0;
  for (size_t i = 0; i < rows; ++i) {
    word |= static_cast<uint64_t>(codes[i] != null_code && codes[i] != code)
            << i;
  }
  return word;
}

inline void ScalarMaskCodesEq(const int32_t* codes, size_t n, int32_t code,
                              uint64_t* out) {
  for (size_t begin = 0; begin < n; begin += 64) {
    const size_t rows = n - begin < 64 ? n - begin : 64;
    out[begin / 64] = CodesEqWord(codes + begin, rows, code);
  }
}

inline void ScalarMaskCodesNe(const int32_t* codes, size_t n,
                              int32_t null_code, int32_t code, uint64_t* out) {
  for (size_t begin = 0; begin < n; begin += 64) {
    const size_t rows = n - begin < 64 ? n - begin : 64;
    out[begin / 64] = CodesNeWord(codes + begin, rows, null_code, code);
  }
}

// NaN never matches (null convention), not even under kNe where plain
// IEEE != would admit it.
inline bool NumericMatch(double v, Cmp op, double rhs) {
  if (std::isnan(v)) return false;
  switch (op) {
    case Cmp::kEq: return v == rhs;
    case Cmp::kNe: return v != rhs;
    case Cmp::kLt: return v < rhs;
    case Cmp::kLe: return v <= rhs;
    case Cmp::kGt: return v > rhs;
    case Cmp::kGe: return v >= rhs;
  }
  return false;
}

inline uint64_t NumericCmpWord(const double* values, size_t rows, Cmp op,
                               double rhs) {
  uint64_t word = 0;
  for (size_t i = 0; i < rows; ++i) {
    word |= static_cast<uint64_t>(NumericMatch(values[i], op, rhs)) << i;
  }
  return word;
}

inline void ScalarMaskNumericCmp(const double* values, size_t n, Cmp op,
                                 double rhs, uint64_t* out) {
  for (size_t begin = 0; begin < n; begin += 64) {
    const size_t rows = n - begin < 64 ? n - begin : 64;
    out[begin / 64] = NumericCmpWord(values + begin, rows, op, rhs);
  }
}

// ---------------------------------------------------------------------
// Accumulation core.

/// Per-sink integer counters kept in registers during the pass and
/// flushed once at the end (integer adds commute; the float arrays are
/// updated in place, in row order).
struct SinkCounters {
  size_t rows = 0;
  size_t n_treated = 0;
  size_t n_control = 0;

  void FlushTo(const CateSink& sink) const {
    *sink.rows += rows;
    *sink.n_treated += n_treated;
    *sink.n_control += n_control;
  }
};

/// The per-row statistic adds, in the scalar loop's exact order. `sub` is
/// null when not splitting on the protected bit (counters_sub unused).
template <bool kSplit, bool kMoments>
inline void AddRow(const CateAccumArgs& args, size_t r, int32_t c, int arm,
                   bool prot_bit, SinkCounters* counters_overall,
                   SinkCounters* counters_prot, SinkCounters* counters_nonprot) {
  const size_t idx = static_cast<size_t>(c) * 2 + static_cast<size_t>(arm);
  const double yr = args.outcome[r];
  const CateSink& overall = args.overall;
  const CateSink* sub = nullptr;
  SinkCounters* sub_counters = nullptr;
  if (kSplit) {
    sub = prot_bit ? &args.prot : &args.nonprot;
    sub_counters = prot_bit ? counters_prot : counters_nonprot;
  }

  ++counters_overall->rows;
  if (arm != 0) {
    ++counters_overall->n_treated;
  } else {
    ++counters_overall->n_control;
  }
  ++overall.n[idx];
  overall.sy[idx] += yr;
  overall.syy[idx] += yr * yr;
  if (kSplit) {
    ++sub_counters->rows;
    if (arm != 0) {
      ++sub_counters->n_treated;
    } else {
      ++sub_counters->n_control;
    }
    ++sub->n[idx];
    sub->sy[idx] += yr;
    sub->syy[idx] += yr * yr;
  }
  if (kMoments) {
    const size_t m = args.num_numeric;
    const size_t zbase = idx * m;
    const size_t zzbase = idx * (m * (m + 1) / 2);
    for (size_t j = 0, t = 0; j < m; ++j) {
      const double zj = args.zcols[j][r];
      overall.zsum[zbase + j] += zj;
      overall.zysum[zbase + j] += zj * yr;
      if (kSplit) {
        sub->zsum[zbase + j] += zj;
        sub->zysum[zbase + j] += zj * yr;
      }
      for (size_t k = j; k < m; ++k, ++t) {
        const double zz = zj * args.zcols[k][r];
        overall.zzsum[zzbase + t] += zz;
        if (kSplit) sub->zzsum[zzbase + t] += zz;
      }
    }
  }
}

/// The full scalar accumulation pass, specialized at compile time on the
/// protected split and the moments block so the hot no-split/no-moments
/// shape carries no per-row branches beyond the data-dependent ones.
template <bool kSplit, bool kMoments>
inline void CateAccumulateCore(const CateAccumArgs& args) {
  const uint64_t* gw = args.group_words;
  const uint64_t* tw = args.treated_words;
  const uint64_t* pw = args.protected_words;
  const int32_t* cell_of_row = args.cell_of_row;
  SinkCounters overall, prot, nonprot;
  for (size_t w = args.word_begin; w < args.word_end; ++w) {
    uint64_t bits = gw[w];
    if (bits == 0) continue;
    const uint64_t tword = tw[w];
    const uint64_t pword = kSplit ? pw[w] : 0;
    while (bits != 0) {
      const int b = __builtin_ctzll(bits);
      bits &= bits - 1;
      const size_t r = w * 64 + static_cast<size_t>(b);
      const int32_t c = cell_of_row[r];
      if (c < 0) continue;
      const int arm = static_cast<int>((tword >> b) & 1);
      const bool prot_bit = kSplit && (((pword >> b) & 1) != 0);
      AddRow<kSplit, kMoments>(args, r, c, arm, prot_bit, &overall, &prot,
                               &nonprot);
    }
  }
  overall.FlushTo(args.overall);
  if (kSplit) {
    prot.FlushTo(args.prot);
    nonprot.FlushTo(args.nonprot);
  }
}

/// Dispatch helper shared by the tiers: picks the (split, moments)
/// specialization. Vector tiers call this for their non-dense fallback.
inline void ScalarCateAccumulate(const CateAccumArgs& args) {
  const bool split = args.protected_words != nullptr;
  if (split) {
    if (args.moments) {
      CateAccumulateCore<true, true>(args);
    } else {
      CateAccumulateCore<true, false>(args);
    }
  } else {
    if (args.moments) {
      CateAccumulateCore<false, true>(args);
    } else {
      CateAccumulateCore<false, false>(args);
    }
  }
}

}  // namespace core
}  // namespace simd
}  // namespace faircap

#endif  // FAIRCAP_UTIL_SIMD_SIMD_KERNELS_CORE_H_
