// Internal: portable kernel bodies shared by the per-ISA translation
// units. The scalar tier uses these as THE implementation; the AVX2 and
// AVX-512 tiers use them for word tails and for the per-row statistic
// adds of the accumulation kernel.
//
// The accumulation core is the determinism anchor of the whole layer. For
// real-valued outcomes it performs every floating-point add in ascending
// row order with the same associations as the original CateStatsEngine
// scalar loop — vector tiers may prepare lanes (cell indices, arm bits)
// with SIMD and stage a dense word's rows into small buffers, but each
// slot's add sequence is always the ascending-row scalar sequence, so a
// vectorized scatter-add (which would race with itself and reassociate)
// is never used. For integer-valued outcomes the int64 fast path below is
// exact, so reassociation is free and the dense-word loop runs branchless
// at full width; the safe_rows guard keeps every partial below 2^53 so the
// conversion to double reproduces the legacy FP result bit for bit.

#ifndef FAIRCAP_UTIL_SIMD_SIMD_KERNELS_CORE_H_
#define FAIRCAP_UTIL_SIMD_SIMD_KERNELS_CORE_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "util/simd/simd.h"

namespace faircap {
namespace simd {
namespace core {

inline size_t ScalarPopcount(const uint64_t* words, size_t num_words) {
  size_t n = 0;
  for (size_t i = 0; i < num_words; ++i) {
    n += static_cast<size_t>(__builtin_popcountll(words[i]));
  }
  return n;
}

inline size_t ScalarAndCount(const uint64_t* a, const uint64_t* b,
                             size_t num_words) {
  size_t n = 0;
  for (size_t i = 0; i < num_words; ++i) {
    n += static_cast<size_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return n;
}

inline size_t ScalarAndNotCount(const uint64_t* a, const uint64_t* b,
                                size_t num_words) {
  size_t n = 0;
  for (size_t i = 0; i < num_words; ++i) {
    n += static_cast<size_t>(__builtin_popcountll(a[i] & ~b[i]));
  }
  return n;
}

inline void ScalarAndInplace(uint64_t* a, const uint64_t* b,
                             size_t num_words) {
  for (size_t i = 0; i < num_words; ++i) a[i] &= b[i];
}

inline void ScalarOrInplace(uint64_t* a, const uint64_t* b,
                            size_t num_words) {
  for (size_t i = 0; i < num_words; ++i) a[i] |= b[i];
}

inline void ScalarAndNotInplace(uint64_t* a, const uint64_t* b,
                                size_t num_words) {
  for (size_t i = 0; i < num_words; ++i) a[i] &= ~b[i];
}

// One mask word (up to 64 rows) of the categorical compare scans.
inline uint64_t CodesEqWord(const int32_t* codes, size_t rows, int32_t code) {
  uint64_t word = 0;
  for (size_t i = 0; i < rows; ++i) {
    word |= static_cast<uint64_t>(codes[i] == code) << i;
  }
  return word;
}

inline uint64_t CodesNeWord(const int32_t* codes, size_t rows,
                            int32_t null_code, int32_t code) {
  uint64_t word = 0;
  for (size_t i = 0; i < rows; ++i) {
    word |= static_cast<uint64_t>(codes[i] != null_code && codes[i] != code)
            << i;
  }
  return word;
}

inline void ScalarMaskCodesEq(const int32_t* codes, size_t n, int32_t code,
                              uint64_t* out) {
  for (size_t begin = 0; begin < n; begin += 64) {
    const size_t rows = n - begin < 64 ? n - begin : 64;
    out[begin / 64] = CodesEqWord(codes + begin, rows, code);
  }
}

inline void ScalarMaskCodesNe(const int32_t* codes, size_t n,
                              int32_t null_code, int32_t code, uint64_t* out) {
  for (size_t begin = 0; begin < n; begin += 64) {
    const size_t rows = n - begin < 64 ? n - begin : 64;
    out[begin / 64] = CodesNeWord(codes + begin, rows, null_code, code);
  }
}

// NaN never matches (null convention), not even under kNe where plain
// IEEE != would admit it.
inline bool NumericMatch(double v, Cmp op, double rhs) {
  if (std::isnan(v)) return false;
  switch (op) {
    case Cmp::kEq: return v == rhs;
    case Cmp::kNe: return v != rhs;
    case Cmp::kLt: return v < rhs;
    case Cmp::kLe: return v <= rhs;
    case Cmp::kGt: return v > rhs;
    case Cmp::kGe: return v >= rhs;
  }
  return false;
}

inline uint64_t NumericCmpWord(const double* values, size_t rows, Cmp op,
                               double rhs) {
  uint64_t word = 0;
  for (size_t i = 0; i < rows; ++i) {
    word |= static_cast<uint64_t>(NumericMatch(values[i], op, rhs)) << i;
  }
  return word;
}

inline void ScalarMaskNumericCmp(const double* values, size_t n, Cmp op,
                                 double rhs, uint64_t* out) {
  for (size_t begin = 0; begin < n; begin += 64) {
    const size_t rows = n - begin < 64 ? n - begin : 64;
    out[begin / 64] = NumericCmpWord(values + begin, rows, op, rhs);
  }
}

// ---------------------------------------------------------------------
// Accumulation core.

/// Per-sink integer counters kept in registers during the pass and
/// flushed once at the end (integer adds commute; the float arrays are
/// updated in place, in row order).
struct SinkCounters {
  size_t rows = 0;
  size_t n_treated = 0;
  size_t n_control = 0;

  void FlushTo(const CateSink& sink) const {
    *sink.rows += rows;
    *sink.n_treated += n_treated;
    *sink.n_control += n_control;
  }
};

/// The per-row statistic adds, in the scalar loop's exact order. `sub` is
/// null when not splitting on the protected bit (counters_sub unused).
template <bool kSplit, bool kMoments>
inline void AddRow(const CateAccumArgs& args, size_t r, int32_t c, int arm,
                   bool prot_bit, SinkCounters* counters_overall,
                   SinkCounters* counters_prot, SinkCounters* counters_nonprot) {
  const size_t idx = static_cast<size_t>(c) * 2 + static_cast<size_t>(arm);
  const double yr = args.outcome[r];
  const CateSink& overall = args.overall;
  const CateSink* sub = nullptr;
  SinkCounters* sub_counters = nullptr;
  if (kSplit) {
    sub = prot_bit ? &args.prot : &args.nonprot;
    sub_counters = prot_bit ? counters_prot : counters_nonprot;
  }

  ++counters_overall->rows;
  if (arm != 0) {
    ++counters_overall->n_treated;
  } else {
    ++counters_overall->n_control;
  }
  ++overall.n[idx];
  overall.sy[idx] += yr;
  overall.syy[idx] += yr * yr;
  if (kSplit) {
    ++sub_counters->rows;
    if (arm != 0) {
      ++sub_counters->n_treated;
    } else {
      ++sub_counters->n_control;
    }
    ++sub->n[idx];
    sub->sy[idx] += yr;
    sub->syy[idx] += yr * yr;
  }
  if (kMoments) {
    const size_t m = args.num_numeric;
    const size_t zbase = idx * m;
    const size_t zzbase = idx * (m * (m + 1) / 2);
    for (size_t j = 0, t = 0; j < m; ++j) {
      const double zj = args.zcols[j][r];
      overall.zsum[zbase + j] += zj;
      overall.zysum[zbase + j] += zj * yr;
      if (kSplit) {
        sub->zsum[zbase + j] += zj;
        sub->zysum[zbase + j] += zj * yr;
      }
      for (size_t k = j; k < m; ++k, ++t) {
        const double zz = zj * args.zcols[k][r];
        overall.zzsum[zzbase + t] += zz;
        if (kSplit) sub->zzsum[zzbase + t] += zz;
      }
    }
  }
}

/// The full scalar accumulation pass, specialized at compile time on the
/// protected split and the moments block so the hot no-split/no-moments
/// shape carries no per-row branches beyond the data-dependent ones.
template <bool kSplit, bool kMoments>
inline void CateAccumulateCore(const CateAccumArgs& args) {
  const uint64_t* gw = args.group_words;
  const uint64_t* tw = args.treated_words;
  const uint64_t* pw = args.protected_words;
  const int32_t* cell_of_row = args.cell_of_row;
  SinkCounters overall, prot, nonprot;
  for (size_t w = args.word_begin; w < args.word_end; ++w) {
    uint64_t bits = gw[w];
    if (bits == 0) continue;
    // The scalar tier has no staged dense path; every populated word is a
    // sparse-path word for the obs breakdown.
    if (args.sparse_words != nullptr) ++*args.sparse_words;
    const uint64_t tword = tw[w];
    const uint64_t pword = kSplit ? pw[w] : 0;
    while (bits != 0) {
      const int b = __builtin_ctzll(bits);
      bits &= bits - 1;
      const size_t r = w * 64 + static_cast<size_t>(b);
      const int32_t c = cell_of_row[r];
      if (c < 0) continue;
      const int arm = static_cast<int>((tword >> b) & 1);
      const bool prot_bit = kSplit && (((pword >> b) & 1) != 0);
      AddRow<kSplit, kMoments>(args, r, c, arm, prot_bit, &overall, &prot,
                               &nonprot);
    }
  }
  overall.FlushTo(args.overall);
  if (kSplit) {
    prot.FlushTo(args.prot);
    nonprot.FlushTo(args.nonprot);
  }
}

/// Dispatch helper shared by the tiers: picks the (split, moments)
/// specialization. Vector tiers call this for their non-dense fallback.
inline void ScalarCateAccumulate(const CateAccumArgs& args) {
  const bool split = args.protected_words != nullptr;
  if (split) {
    if (args.moments) {
      CateAccumulateCore<true, true>(args);
    } else {
      CateAccumulateCore<true, false>(args);
    }
  } else {
    if (args.moments) {
      CateAccumulateCore<false, true>(args);
    } else {
      CateAccumulateCore<false, false>(args);
    }
  }
}

// ---------------------------------------------------------------------
// Exact integer fast path.

/// Per-row int64 adds for the sparse words of the integer path (ctz
/// iteration; the dense-word body is IntDenseWord). Mirrors AddRow, minus
/// moments — the engine never routes moments through the integer path.
template <bool kSplit>
inline void AddRowInt(const CateAccumArgs& args, size_t r, int32_t c, int arm,
                      bool prot_bit, SinkCounters* counters_overall,
                      SinkCounters* counters_prot,
                      SinkCounters* counters_nonprot) {
  const size_t idx = static_cast<size_t>(c) * 2 + static_cast<size_t>(arm);
  const int64_t y = args.outcome_i64[r];
  const int64_t yy = y * y;
  ++counters_overall->rows;
  if (arm != 0) {
    ++counters_overall->n_treated;
  } else {
    ++counters_overall->n_control;
  }
  ++args.overall.n[idx];
  args.overall.isy[idx] += y;
  args.overall.isyy[idx] += yy;
  if (kSplit) {
    const CateSink& sub = prot_bit ? args.prot : args.nonprot;
    SinkCounters* sub_counters = prot_bit ? counters_prot : counters_nonprot;
    ++sub_counters->rows;
    if (arm != 0) {
      ++sub_counters->n_treated;
    } else {
      ++sub_counters->n_control;
    }
    ++sub.n[idx];
    sub.isy[idx] += y;
    sub.isyy[idx] += yy;
  }
}

/// Folds one sink's int64 staging arrays into its FP arrays. Every staged
/// total is below 2^53 (safe_rows guard), so the conversion is exact and
/// the result equals what the ascending-row FP adds would have produced.
/// Scratch slots past num_slots are dropped, not flushed.
inline void FlushIntSinkToFp(const CateSink& sink, size_t num_slots) {
  for (size_t i = 0; i < num_slots; ++i) {
    sink.sy[i] += static_cast<double>(sink.isy[i]);
    sink.syy[i] += static_cast<double>(sink.isyy[i]);
  }
}

inline void FlushIntToFp(const CateAccumArgs& args, bool split) {
  FlushIntSinkToFp(args.overall, args.num_slots);
  if (split) {
    FlushIntSinkToFp(args.prot, args.num_slots);
    FlushIntSinkToFp(args.nonprot, args.num_slots);
  }
}

/// The branchless dense-word body of the integer path, shared by the
/// vector tiers: idx_lanes[b] = 2*cell+arm for row base+b (negative when
/// the row is excluded), valid = mask of included rows. Excluded rows are
/// steered into the scratch slot at num_slots instead of being branched
/// around; their y is 0 only by accident, so scratch is write-only and
/// never read. Counters come from popcounts, not per-row increments.
template <bool kSplit>
inline void IntDenseWord(const CateAccumArgs& args, size_t base,
                         const int32_t* idx_lanes, uint64_t valid,
                         uint64_t tword, uint64_t pword,
                         SinkCounters* counters_overall,
                         SinkCounters* counters_prot,
                         SinkCounters* counters_nonprot) {
  const size_t rows = static_cast<size_t>(__builtin_popcountll(valid));
  const size_t nt = static_cast<size_t>(__builtin_popcountll(valid & tword));
  counters_overall->rows += rows;
  counters_overall->n_treated += nt;
  counters_overall->n_control += rows - nt;
  uint32_t* sub_n[2] = {nullptr, nullptr};
  int64_t* sub_isy[2] = {nullptr, nullptr};
  int64_t* sub_isyy[2] = {nullptr, nullptr};
  if (kSplit) {
    const uint64_t pv = valid & pword;
    const size_t pr = static_cast<size_t>(__builtin_popcountll(pv));
    const size_t pt = static_cast<size_t>(__builtin_popcountll(pv & tword));
    counters_prot->rows += pr;
    counters_prot->n_treated += pt;
    counters_prot->n_control += pr - pt;
    counters_nonprot->rows += rows - pr;
    counters_nonprot->n_treated += nt - pt;
    counters_nonprot->n_control += (rows - pr) - (nt - pt);
    sub_n[0] = args.nonprot.n;
    sub_n[1] = args.prot.n;
    sub_isy[0] = args.nonprot.isy;
    sub_isy[1] = args.prot.isy;
    sub_isyy[0] = args.nonprot.isyy;
    sub_isyy[1] = args.prot.isyy;
  }
  const int64_t* y64 = args.outcome_i64 + base;
  const int32_t scratch = static_cast<int32_t>(args.num_slots);
  for (int b = 0; b < 64; ++b) {
    const int32_t raw = idx_lanes[b];
    const size_t idx = static_cast<size_t>(raw >= 0 ? raw : scratch);
    const int64_t y = y64[b];
    const int64_t yy = y * y;
    ++args.overall.n[idx];
    args.overall.isy[idx] += y;
    args.overall.isyy[idx] += yy;
    if (kSplit) {
      const size_t pb = (pword >> b) & 1;
      ++sub_n[pb][idx];
      sub_isy[pb][idx] += y;
      sub_isyy[pb][idx] += yy;
    }
  }
}

/// The scalar integer pass: ctz iteration with int64 adds and the
/// per-word safe_rows guard. On a guard trip the integer partials are
/// flushed exactly into the FP arrays and the remaining words run through
/// the scalar FP core; returns false in that case (FP arrays
/// authoritative), true when the whole range stayed integer.
template <bool kSplit>
inline bool CateAccumulateIntCore(const CateAccumArgs& args) {
  const uint64_t* gw = args.group_words;
  const uint64_t* tw = args.treated_words;
  const uint64_t* pw = args.protected_words;
  const int32_t* cell_of_row = args.cell_of_row;
  SinkCounters overall, prot, nonprot;
  for (size_t w = args.word_begin; w < args.word_end; ++w) {
    uint64_t bits = gw[w];
    if (bits == 0) continue;
    if (overall.rows + 64 > args.safe_rows) {
      overall.FlushTo(args.overall);
      if (kSplit) {
        prot.FlushTo(args.prot);
        nonprot.FlushTo(args.nonprot);
      }
      FlushIntToFp(args, kSplit);
      CateAccumArgs rest = args;
      rest.word_begin = w;
      CateAccumulateCore<kSplit, false>(rest);
      return false;
    }
    const uint64_t tword = tw[w];
    const uint64_t pword = kSplit ? pw[w] : 0;
    if (args.sparse_words != nullptr) ++*args.sparse_words;
    while (bits != 0) {
      const int b = __builtin_ctzll(bits);
      bits &= bits - 1;
      const size_t r = w * 64 + static_cast<size_t>(b);
      const int32_t c = cell_of_row[r];
      if (c < 0) continue;
      const int arm = static_cast<int>((tword >> b) & 1);
      const bool prot_bit = kSplit && (((pword >> b) & 1) != 0);
      AddRowInt<kSplit>(args, r, c, arm, prot_bit, &overall, &prot, &nonprot);
    }
  }
  overall.FlushTo(args.overall);
  if (kSplit) {
    prot.FlushTo(args.prot);
    nonprot.FlushTo(args.nonprot);
  }
  return true;
}

/// (split) dispatch for the scalar integer kernel.
inline bool ScalarCateAccumulateInt(const CateAccumArgs& args) {
  if (args.protected_words != nullptr) {
    return CateAccumulateIntCore<true>(args);
  }
  return CateAccumulateIntCore<false>(args);
}

// ---------------------------------------------------------------------
// Fused word-level FP staging (vector tiers' dense-word path).

/// One staged row of a dense word: its (cell, arm) slot, the row offset
/// within the word (for the moments block), and the outcome value — 16
/// bytes so a 64-row word stages within two cache lines per buffer.
struct StageEntry {
  int32_t idx;
  int32_t row_off;
  double y;
};

/// Partitions a dense word's included rows into per-sink staging buffers
/// in ascending row order: every row appends to `all`, and (when
/// splitting) to exactly one of `prot_buf`/`nonprot_buf` via a branchless
/// dual write. Buffers must hold 64 entries. Returns counts through the
/// out-params.
template <bool kSplit>
inline void BuildStage(const int32_t* idx_lanes, uint64_t valid,
                       uint64_t pword, const double* y_word, StageEntry* all,
                       size_t* all_n, StageEntry* prot_buf, size_t* prot_n,
                       StageEntry* nonprot_buf, size_t* nonprot_n) {
  size_t an = 0, pn = 0, nn = 0;
  while (valid != 0) {
    const int b = __builtin_ctzll(valid);
    valid &= valid - 1;
    const StageEntry e{idx_lanes[b], b, y_word[b]};
    all[an++] = e;
    if (kSplit) {
      const size_t pb = (pword >> static_cast<unsigned>(b)) & 1;
      prot_buf[pn] = e;
      nonprot_buf[nn] = e;
      pn += pb;
      nn += 1 - pb;
    }
  }
  *all_n = an;
  if (kSplit) {
    *prot_n = pn;
    *nonprot_n = nn;
  }
}

/// Replays one sink's staged entries. Entries arrive in ascending row
/// order, so each slot sees the same add sequence as the scalar loop —
/// only adds to *different* sinks were reordered, which no slot observes.
template <bool kMoments>
inline void FlushStage(const CateAccumArgs& args, const CateSink& sink,
                       const StageEntry* entries, size_t count, size_t base) {
  for (size_t i = 0; i < count; ++i) {
    const size_t idx = static_cast<size_t>(entries[i].idx);
    const double y = entries[i].y;
    ++sink.n[idx];
    sink.sy[idx] += y;
    sink.syy[idx] += y * y;
    if (kMoments) {
      const size_t r = base + static_cast<size_t>(entries[i].row_off);
      const size_t m = args.num_numeric;
      const size_t zbase = idx * m;
      const size_t zzbase = idx * (m * (m + 1) / 2);
      for (size_t j = 0, t = 0; j < m; ++j) {
        const double zj = args.zcols[j][r];
        sink.zsum[zbase + j] += zj;
        sink.zysum[zbase + j] += zj * y;
        for (size_t k = j; k < m; ++k, ++t) {
          sink.zzsum[zzbase + t] += zj * args.zcols[k][r];
        }
      }
    }
  }
}

/// The staged dense-word body for the FP vector tiers: popcount-derived
/// counters, one staging pass, then one tight flush loop per sink.
template <bool kSplit, bool kMoments>
inline void StagedDenseWord(const CateAccumArgs& args, size_t base,
                            const int32_t* idx_lanes, uint64_t valid,
                            uint64_t tword, uint64_t pword,
                            SinkCounters* counters_overall,
                            SinkCounters* counters_prot,
                            SinkCounters* counters_nonprot) {
  const size_t rows = static_cast<size_t>(__builtin_popcountll(valid));
  const size_t nt = static_cast<size_t>(__builtin_popcountll(valid & tword));
  counters_overall->rows += rows;
  counters_overall->n_treated += nt;
  counters_overall->n_control += rows - nt;
  if (kSplit) {
    const uint64_t pv = valid & pword;
    const size_t pr = static_cast<size_t>(__builtin_popcountll(pv));
    const size_t pt = static_cast<size_t>(__builtin_popcountll(pv & tword));
    counters_prot->rows += pr;
    counters_prot->n_treated += pt;
    counters_prot->n_control += pr - pt;
    counters_nonprot->rows += rows - pr;
    counters_nonprot->n_treated += nt - pt;
    counters_nonprot->n_control += (rows - pr) - (nt - pt);
  }
  StageEntry all[64], prot_buf[64], nonprot_buf[64];
  size_t all_n = 0, prot_n = 0, nonprot_n = 0;
  BuildStage<kSplit>(idx_lanes, valid, pword, args.outcome + base, all,
                     &all_n, prot_buf, &prot_n, nonprot_buf, &nonprot_n);
  FlushStage<kMoments>(args, args.overall, all, all_n, base);
  if (kSplit) {
    FlushStage<kMoments>(args, args.prot, prot_buf, prot_n, base);
    FlushStage<kMoments>(args, args.nonprot, nonprot_buf, nonprot_n, base);
  }
}

}  // namespace core
}  // namespace simd
}  // namespace faircap

#endif  // FAIRCAP_UTIL_SIMD_SIMD_KERNELS_CORE_H_
