// AVX2 kernel tier. Compiled with -mavx2 (see src/util/CMakeLists.txt);
// only dispatched to when CPUID reports AVX2, so the intrinsics here can
// be used unconditionally.
//
// Counting kernels use a Harley–Seal carry-save adder over 256-bit lanes
// with the nibble-LUT popcount (the classic Muła/Kurz/Lemire layout):
// sixteen 256-bit blocks per iteration, one vector popcount per sixteen
// loads instead of one per word. The compare-scan kernels turn vector
// compare masks straight into bitmap words (8 int32 / 4 double lanes per
// movemask). The FP accumulation kernel prepares (cell, arm) lanes with
// vector loads on dense words and stages each word's rows into per-sink
// buffers replayed in ascending row order (simd_kernels_core.h explains
// why each slot's add sequence must stay the scalar one); the integer
// kernel is exact, so its dense-word loop runs branchless at full width.

#include <immintrin.h>

#include "util/simd/simd_kernels_core.h"

namespace faircap {
namespace simd {
namespace {

inline __m256i PopcountEpi64(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt =
      _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                      _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

inline void Csa(__m256i* high, __m256i* low, __m256i a, __m256i b,
                __m256i c) {
  const __m256i u = _mm256_xor_si256(a, b);
  *high = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  *low = _mm256_xor_si256(u, c);
}

inline uint64_t ReduceAddEpi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<uint64_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<uint64_t>(_mm_extract_epi64(sum, 1));
}

/// Harley–Seal popcount over `num_words` uint64 words, where BlockLoad(i)
/// yields the i-th 256-bit block and WordLoad(i) the i-th uint64 word of
/// the (possibly fused AND/ANDNOT) input stream.
template <typename BlockLoad, typename WordLoad>
size_t HarleySealCount(BlockLoad block, WordLoad word, size_t num_words) {
  const size_t blocks = num_words / 4;
  __m256i total = _mm256_setzero_si256();
  __m256i ones = _mm256_setzero_si256();
  __m256i twos = _mm256_setzero_si256();
  __m256i fours = _mm256_setzero_si256();
  __m256i eights = _mm256_setzero_si256();
  __m256i twos_a, twos_b, fours_a, fours_b, eights_a, eights_b, sixteens;
  size_t i = 0;
  for (; i + 16 <= blocks; i += 16) {
    Csa(&twos_a, &ones, ones, block(i + 0), block(i + 1));
    Csa(&twos_b, &ones, ones, block(i + 2), block(i + 3));
    Csa(&fours_a, &twos, twos, twos_a, twos_b);
    Csa(&twos_a, &ones, ones, block(i + 4), block(i + 5));
    Csa(&twos_b, &ones, ones, block(i + 6), block(i + 7));
    Csa(&fours_b, &twos, twos, twos_a, twos_b);
    Csa(&eights_a, &fours, fours, fours_a, fours_b);
    Csa(&twos_a, &ones, ones, block(i + 8), block(i + 9));
    Csa(&twos_b, &ones, ones, block(i + 10), block(i + 11));
    Csa(&fours_a, &twos, twos, twos_a, twos_b);
    Csa(&twos_a, &ones, ones, block(i + 12), block(i + 13));
    Csa(&twos_b, &ones, ones, block(i + 14), block(i + 15));
    Csa(&fours_b, &twos, twos, twos_a, twos_b);
    Csa(&eights_b, &fours, fours, fours_a, fours_b);
    Csa(&sixteens, &eights, eights, eights_a, eights_b);
    total = _mm256_add_epi64(total, PopcountEpi64(sixteens));
  }
  total = _mm256_slli_epi64(total, 4);
  total = _mm256_add_epi64(total,
                           _mm256_slli_epi64(PopcountEpi64(eights), 3));
  total = _mm256_add_epi64(total,
                           _mm256_slli_epi64(PopcountEpi64(fours), 2));
  total = _mm256_add_epi64(total,
                           _mm256_slli_epi64(PopcountEpi64(twos), 1));
  total = _mm256_add_epi64(total, PopcountEpi64(ones));
  for (; i < blocks; ++i) {
    total = _mm256_add_epi64(total, PopcountEpi64(block(i)));
  }
  size_t count = ReduceAddEpi64(total);
  for (size_t w = blocks * 4; w < num_words; ++w) {
    count += static_cast<size_t>(__builtin_popcountll(word(w)));
  }
  return count;
}

size_t Avx2Popcount(const uint64_t* words, size_t num_words) {
  return HarleySealCount(
      [&](size_t i) {
        return _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(words + i * 4));
      },
      [&](size_t w) { return words[w]; }, num_words);
}

size_t Avx2AndCount(const uint64_t* a, const uint64_t* b, size_t num_words) {
  return HarleySealCount(
      [&](size_t i) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i * 4));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i * 4));
        return _mm256_and_si256(va, vb);
      },
      [&](size_t w) { return a[w] & b[w]; }, num_words);
}

size_t Avx2AndNotCount(const uint64_t* a, const uint64_t* b,
                       size_t num_words) {
  return HarleySealCount(
      [&](size_t i) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i * 4));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i * 4));
        // andnot(b, a) = a & ~b.
        return _mm256_andnot_si256(vb, va);
      },
      [&](size_t w) { return a[w] & ~b[w]; }, num_words);
}

template <typename Op>
inline void InplaceWords(uint64_t* a, const uint64_t* b, size_t num_words,
                         Op op) {
  size_t w = 0;
  for (; w + 4 <= num_words; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + w), op(va, vb));
  }
  for (; w < num_words; ++w) {
    alignas(32) uint64_t tmp_a[4] = {a[w], 0, 0, 0};
    alignas(32) uint64_t tmp_b[4] = {b[w], 0, 0, 0};
    const __m256i va =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(tmp_a));
    const __m256i vb =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(tmp_b));
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp_a), op(va, vb));
    a[w] = tmp_a[0];
  }
}

void Avx2AndInplace(uint64_t* a, const uint64_t* b, size_t num_words) {
  InplaceWords(a, b, num_words,
               [](__m256i x, __m256i y) { return _mm256_and_si256(x, y); });
}

void Avx2OrInplace(uint64_t* a, const uint64_t* b, size_t num_words) {
  InplaceWords(a, b, num_words,
               [](__m256i x, __m256i y) { return _mm256_or_si256(x, y); });
}

void Avx2AndNotInplace(uint64_t* a, const uint64_t* b, size_t num_words) {
  InplaceWords(a, b, num_words,
               [](__m256i x, __m256i y) { return _mm256_andnot_si256(y, x); });
}

// One full 64-row mask word from eight 8-lane int32 equality compares.
inline uint64_t CodesEqWord64(const int32_t* codes, __m256i target) {
  uint64_t word = 0;
  for (int g = 0; g < 8; ++g) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(codes + g * 8));
    const uint32_t m = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, target))));
    word |= static_cast<uint64_t>(m) << (g * 8);
  }
  return word;
}

void Avx2MaskCodesEq(const int32_t* codes, size_t n, int32_t code,
                     uint64_t* out) {
  const __m256i target = _mm256_set1_epi32(code);
  const size_t full_words = n / 64;
  for (size_t w = 0; w < full_words; ++w) {
    out[w] = CodesEqWord64(codes + w * 64, target);
  }
  if (n % 64 != 0) {
    out[full_words] = core::CodesEqWord(codes + full_words * 64, n % 64, code);
  }
}

void Avx2MaskCodesNe(const int32_t* codes, size_t n, int32_t null_code,
                     int32_t code, uint64_t* out) {
  // != code and != null_code  ==  ~(== code | == null_code).
  const __m256i target = _mm256_set1_epi32(code);
  const __m256i null_target = _mm256_set1_epi32(null_code);
  const size_t full_words = n / 64;
  for (size_t w = 0; w < full_words; ++w) {
    const int32_t* p = codes + w * 64;
    uint64_t matched = 0;
    for (int g = 0; g < 8; ++g) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + g * 8));
      const __m256i hit = _mm256_or_si256(_mm256_cmpeq_epi32(v, target),
                                          _mm256_cmpeq_epi32(v, null_target));
      const uint32_t m = static_cast<uint32_t>(
          _mm256_movemask_ps(_mm256_castsi256_ps(hit)));
      matched |= static_cast<uint64_t>(m) << (g * 8);
    }
    out[w] = ~matched;
  }
  if (n % 64 != 0) {
    out[full_words] =
        core::CodesNeWord(codes + full_words * 64, n % 64, null_code, code);
  }
}

// Ordered-quiet compares: false whenever a lane is NaN, which implements
// the "null matches nothing, kNe included" convention in the predicate.
template <int kImm>
void MaskNumericCmpImm(const double* values, size_t n, Cmp op, double rhs,
                       uint64_t* out) {
  const __m256d target = _mm256_set1_pd(rhs);
  const size_t full_words = n / 64;
  for (size_t w = 0; w < full_words; ++w) {
    const double* p = values + w * 64;
    uint64_t word = 0;
    for (int g = 0; g < 16; ++g) {
      const __m256d v = _mm256_loadu_pd(p + g * 4);
      const uint32_t m = static_cast<uint32_t>(
          _mm256_movemask_pd(_mm256_cmp_pd(v, target, kImm)));
      word |= static_cast<uint64_t>(m) << (g * 4);
    }
    out[w] = word;
  }
  if (n % 64 != 0) {
    out[full_words] =
        core::NumericCmpWord(values + full_words * 64, n % 64, op, rhs);
  }
}

void Avx2MaskNumericCmp(const double* values, size_t n, Cmp op, double rhs,
                        uint64_t* out) {
  switch (op) {
    case Cmp::kEq:
      return MaskNumericCmpImm<_CMP_EQ_OQ>(values, n, op, rhs, out);
    case Cmp::kNe:
      return MaskNumericCmpImm<_CMP_NEQ_OQ>(values, n, op, rhs, out);
    case Cmp::kLt:
      return MaskNumericCmpImm<_CMP_LT_OQ>(values, n, op, rhs, out);
    case Cmp::kLe:
      return MaskNumericCmpImm<_CMP_LE_OQ>(values, n, op, rhs, out);
    case Cmp::kGt:
      return MaskNumericCmpImm<_CMP_GT_OQ>(values, n, op, rhs, out);
    case Cmp::kGe:
      return MaskNumericCmpImm<_CMP_GE_OQ>(values, n, op, rhs, out);
  }
}

// ---------------------------------------------------------------------
// Accumulation: dense-word lane preparation.
//
// On a full group word all 64 rows participate, so the cell ids load as
// contiguous 8-lane vectors (no per-row ctz chain) and idx = 2*cell+arm,
// row validity (cell >= 0), and the arm/protected bits all compute eight
// lanes at a time into stack buffers. The FP path then stages the word
// into per-sink buffers and flushes each sink in ascending row order
// (core::StagedDenseWord) — bit-identical sums, one tight loop per sink
// instead of a per-row sink-select branch. The integer path steers every
// row branchlessly into its slot (core::IntDenseWord).

struct DenseLanes {
  int32_t idx[64];     // 2*cell + arm (garbage where invalid)
  uint64_t valid;      // bit i: cell_of_row >= 0
};

inline void PrepareDenseLanes(const int32_t* cells, uint64_t tword,
                              DenseLanes* lanes) {
  const __m256i lane_ids = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i one = _mm256_set1_epi32(1);
  uint64_t valid = 0;
  for (int g = 0; g < 8; ++g) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cells + g * 8));
    // Arm bit per lane: ((tword >> (8g + lane)) & 1).
    const __m256i tbyte =
        _mm256_set1_epi32(static_cast<int32_t>((tword >> (g * 8)) & 0xff));
    const __m256i arm =
        _mm256_and_si256(_mm256_srlv_epi32(tbyte, lane_ids), one);
    const __m256i idx =
        _mm256_add_epi32(_mm256_add_epi32(c, c), arm);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes->idx + g * 8), idx);
    // cell >= 0  ==  NOT(cell < 0); movemask of the sign bits.
    const uint32_t neg = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(c)));
    valid |= static_cast<uint64_t>(~neg & 0xffu) << (g * 8);
  }
  lanes->valid = valid;
}

template <bool kSplit, bool kMoments>
void Avx2CateAccumulateImpl(const CateAccumArgs& args) {
  const uint64_t* gw = args.group_words;
  const uint64_t* tw = args.treated_words;
  const uint64_t* pw = args.protected_words;
  const int32_t* cell_of_row = args.cell_of_row;
  core::SinkCounters overall, prot, nonprot;
  DenseLanes lanes;
  for (size_t w = args.word_begin; w < args.word_end; ++w) {
    uint64_t bits = gw[w];
    if (bits == 0) continue;
    const uint64_t tword = tw[w];
    const uint64_t pword = kSplit ? pw[w] : 0;
    if (bits == ~0ULL) {
      if (args.dense_words != nullptr) ++*args.dense_words;
      const size_t base = w * 64;
      PrepareDenseLanes(cell_of_row + base, tword, &lanes);
      core::StagedDenseWord<kSplit, kMoments>(args, base, lanes.idx,
                                              lanes.valid, tword, pword,
                                              &overall, &prot, &nonprot);
      continue;
    }
    if (args.sparse_words != nullptr) ++*args.sparse_words;
    while (bits != 0) {
      const int b = __builtin_ctzll(bits);
      bits &= bits - 1;
      const size_t r = w * 64 + static_cast<size_t>(b);
      const int32_t c = cell_of_row[r];
      if (c < 0) continue;
      const int arm = static_cast<int>((tword >> b) & 1);
      const bool prot_bit = kSplit && (((pword >> b) & 1) != 0);
      core::AddRow<kSplit, kMoments>(args, r, c, arm, prot_bit, &overall,
                                     &prot, &nonprot);
    }
  }
  overall.FlushTo(args.overall);
  if (kSplit) {
    prot.FlushTo(args.prot);
    nonprot.FlushTo(args.nonprot);
  }
}

void Avx2CateAccumulate(const CateAccumArgs& args) {
  const bool split = args.protected_words != nullptr;
  if (split) {
    if (args.moments) {
      Avx2CateAccumulateImpl<true, true>(args);
    } else {
      Avx2CateAccumulateImpl<true, false>(args);
    }
  } else {
    if (args.moments) {
      Avx2CateAccumulateImpl<false, true>(args);
    } else {
      Avx2CateAccumulateImpl<false, false>(args);
    }
  }
}

template <bool kSplit>
bool Avx2CateAccumulateIntImpl(const CateAccumArgs& args) {
  const uint64_t* gw = args.group_words;
  const uint64_t* tw = args.treated_words;
  const uint64_t* pw = args.protected_words;
  const int32_t* cell_of_row = args.cell_of_row;
  core::SinkCounters overall, prot, nonprot;
  DenseLanes lanes;
  for (size_t w = args.word_begin; w < args.word_end; ++w) {
    uint64_t bits = gw[w];
    if (bits == 0) continue;
    if (overall.rows + 64 > args.safe_rows) {
      overall.FlushTo(args.overall);
      if (kSplit) {
        prot.FlushTo(args.prot);
        nonprot.FlushTo(args.nonprot);
      }
      core::FlushIntToFp(args, kSplit);
      CateAccumArgs rest = args;
      rest.word_begin = w;
      Avx2CateAccumulateImpl<kSplit, false>(rest);
      return false;
    }
    const uint64_t tword = tw[w];
    const uint64_t pword = kSplit ? pw[w] : 0;
    if (bits == ~0ULL) {
      if (args.dense_words != nullptr) ++*args.dense_words;
      const size_t base = w * 64;
      PrepareDenseLanes(cell_of_row + base, tword, &lanes);
      core::IntDenseWord<kSplit>(args, base, lanes.idx, lanes.valid, tword,
                                 pword, &overall, &prot, &nonprot);
      continue;
    }
    if (args.sparse_words != nullptr) ++*args.sparse_words;
    while (bits != 0) {
      const int b = __builtin_ctzll(bits);
      bits &= bits - 1;
      const size_t r = w * 64 + static_cast<size_t>(b);
      const int32_t c = cell_of_row[r];
      if (c < 0) continue;
      const int arm = static_cast<int>((tword >> b) & 1);
      const bool prot_bit = kSplit && (((pword >> b) & 1) != 0);
      core::AddRowInt<kSplit>(args, r, c, arm, prot_bit, &overall, &prot,
                              &nonprot);
    }
  }
  overall.FlushTo(args.overall);
  if (kSplit) {
    prot.FlushTo(args.prot);
    nonprot.FlushTo(args.nonprot);
  }
  return true;
}

bool Avx2CateAccumulateInt(const CateAccumArgs& args) {
  if (args.protected_words != nullptr) {
    return Avx2CateAccumulateIntImpl<true>(args);
  }
  return Avx2CateAccumulateIntImpl<false>(args);
}

const Kernels kAvx2Kernels = {
    Avx2Popcount,
    Avx2AndCount,
    Avx2AndNotCount,
    Avx2AndInplace,
    Avx2OrInplace,
    Avx2AndNotInplace,
    Avx2MaskCodesEq,
    Avx2MaskCodesNe,
    Avx2MaskNumericCmp,
    Avx2CateAccumulate,
    Avx2CateAccumulateInt,
};

}  // namespace

const Kernels* GetAvx2Kernels() { return &kAvx2Kernels; }

}  // namespace simd
}  // namespace faircap
