// AVX-512 kernel tier. Compiled with -mavx512f/bw/dq/vl/vpopcntdq (see
// src/util/CMakeLists.txt); dispatch additionally gates this tier on the
// host reporting all five extensions, so the intrinsics here can be used
// unconditionally.
//
// Counting kernels ride the VPOPCNTDQ per-lane popcount — no CSA tree
// needed, one vpopcntq + vpaddq per 512-bit block. The compare-scan
// kernels use the native compare-to-mask instructions (16 int32 lanes or
// 8 double lanes fold straight into bitmap word fragments, no movemask
// shuffle). The accumulation kernel prepares (cell, arm) lanes sixteen
// at a time on dense words; the statistic adds run through the shared
// scalar core in ascending row order — see simd_kernels_core.h.

#include <immintrin.h>

#include "util/simd/simd_kernels_core.h"

namespace faircap {
namespace simd {
namespace {

inline uint64_t ReduceAddEpi64(__m512i v) {
  return static_cast<uint64_t>(_mm512_reduce_add_epi64(v));
}

template <typename BlockLoad, typename WordLoad>
size_t PopcntdqCount(BlockLoad block, WordLoad word, size_t num_words) {
  const size_t blocks = num_words / 8;
  __m512i total = _mm512_setzero_si512();
  // Two independent accumulators hide the vpaddq latency chain.
  __m512i total2 = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 2 <= blocks; i += 2) {
    total = _mm512_add_epi64(total, _mm512_popcnt_epi64(block(i)));
    total2 = _mm512_add_epi64(total2, _mm512_popcnt_epi64(block(i + 1)));
  }
  for (; i < blocks; ++i) {
    total = _mm512_add_epi64(total, _mm512_popcnt_epi64(block(i)));
  }
  size_t count = ReduceAddEpi64(_mm512_add_epi64(total, total2));
  for (size_t w = blocks * 8; w < num_words; ++w) {
    count += static_cast<size_t>(__builtin_popcountll(word(w)));
  }
  return count;
}

size_t Avx512Popcount(const uint64_t* words, size_t num_words) {
  return PopcntdqCount(
      [&](size_t i) { return _mm512_loadu_si512(words + i * 8); },
      [&](size_t w) { return words[w]; }, num_words);
}

size_t Avx512AndCount(const uint64_t* a, const uint64_t* b,
                      size_t num_words) {
  return PopcntdqCount(
      [&](size_t i) {
        return _mm512_and_si512(_mm512_loadu_si512(a + i * 8),
                                _mm512_loadu_si512(b + i * 8));
      },
      [&](size_t w) { return a[w] & b[w]; }, num_words);
}

size_t Avx512AndNotCount(const uint64_t* a, const uint64_t* b,
                         size_t num_words) {
  return PopcntdqCount(
      [&](size_t i) {
        // andnot(b, a) = a & ~b.
        return _mm512_andnot_si512(_mm512_loadu_si512(b + i * 8),
                                   _mm512_loadu_si512(a + i * 8));
      },
      [&](size_t w) { return a[w] & ~b[w]; }, num_words);
}

template <typename Op>
inline void InplaceWords(uint64_t* a, const uint64_t* b, size_t num_words,
                         Op op) {
  size_t w = 0;
  for (; w + 8 <= num_words; w += 8) {
    _mm512_storeu_si512(
        a + w, op(_mm512_loadu_si512(a + w), _mm512_loadu_si512(b + w)));
  }
  const size_t rem = num_words - w;
  if (rem != 0) {
    const __mmask8 tail = static_cast<__mmask8>((1u << rem) - 1u);
    const __m512i va = _mm512_maskz_loadu_epi64(tail, a + w);
    const __m512i vb = _mm512_maskz_loadu_epi64(tail, b + w);
    _mm512_mask_storeu_epi64(a + w, tail, op(va, vb));
  }
}

void Avx512AndInplace(uint64_t* a, const uint64_t* b, size_t num_words) {
  InplaceWords(a, b, num_words,
               [](__m512i x, __m512i y) { return _mm512_and_si512(x, y); });
}

void Avx512OrInplace(uint64_t* a, const uint64_t* b, size_t num_words) {
  InplaceWords(a, b, num_words,
               [](__m512i x, __m512i y) { return _mm512_or_si512(x, y); });
}

void Avx512AndNotInplace(uint64_t* a, const uint64_t* b, size_t num_words) {
  InplaceWords(a, b, num_words,
               [](__m512i x, __m512i y) { return _mm512_andnot_si512(y, x); });
}

// One full 64-row mask word from four 16-lane compare-to-mask ops.
void Avx512MaskCodesEq(const int32_t* codes, size_t n, int32_t code,
                       uint64_t* out) {
  const __m512i target = _mm512_set1_epi32(code);
  const size_t full_words = n / 64;
  for (size_t w = 0; w < full_words; ++w) {
    const int32_t* p = codes + w * 64;
    uint64_t word = 0;
    for (int g = 0; g < 4; ++g) {
      const __m512i v = _mm512_loadu_si512(p + g * 16);
      const uint64_t m = _mm512_cmpeq_epi32_mask(v, target);
      word |= m << (g * 16);
    }
    out[w] = word;
  }
  if (n % 64 != 0) {
    out[full_words] = core::CodesEqWord(codes + full_words * 64, n % 64, code);
  }
}

void Avx512MaskCodesNe(const int32_t* codes, size_t n, int32_t null_code,
                       int32_t code, uint64_t* out) {
  const __m512i target = _mm512_set1_epi32(code);
  const __m512i null_target = _mm512_set1_epi32(null_code);
  const size_t full_words = n / 64;
  for (size_t w = 0; w < full_words; ++w) {
    const int32_t* p = codes + w * 64;
    uint64_t word = 0;
    for (int g = 0; g < 4; ++g) {
      const __m512i v = _mm512_loadu_si512(p + g * 16);
      const uint64_t m =
          _mm512_cmpneq_epi32_mask(v, target) &
          _mm512_cmpneq_epi32_mask(v, null_target);
      word |= m << (g * 16);
    }
    out[w] = word;
  }
  if (n % 64 != 0) {
    out[full_words] =
        core::CodesNeWord(codes + full_words * 64, n % 64, null_code, code);
  }
}

// Ordered-quiet predicates: NaN lanes never match (null convention).
template <int kImm>
void MaskNumericCmpImm(const double* values, size_t n, Cmp op, double rhs,
                       uint64_t* out) {
  const __m512d target = _mm512_set1_pd(rhs);
  const size_t full_words = n / 64;
  for (size_t w = 0; w < full_words; ++w) {
    const double* p = values + w * 64;
    uint64_t word = 0;
    for (int g = 0; g < 8; ++g) {
      const __m512d v = _mm512_loadu_pd(p + g * 8);
      const uint64_t m = _mm512_cmp_pd_mask(v, target, kImm);
      word |= m << (g * 8);
    }
    out[w] = word;
  }
  if (n % 64 != 0) {
    out[full_words] =
        core::NumericCmpWord(values + full_words * 64, n % 64, op, rhs);
  }
}

void Avx512MaskNumericCmp(const double* values, size_t n, Cmp op, double rhs,
                          uint64_t* out) {
  switch (op) {
    case Cmp::kEq:
      return MaskNumericCmpImm<_CMP_EQ_OQ>(values, n, op, rhs, out);
    case Cmp::kNe:
      return MaskNumericCmpImm<_CMP_NEQ_OQ>(values, n, op, rhs, out);
    case Cmp::kLt:
      return MaskNumericCmpImm<_CMP_LT_OQ>(values, n, op, rhs, out);
    case Cmp::kLe:
      return MaskNumericCmpImm<_CMP_LE_OQ>(values, n, op, rhs, out);
    case Cmp::kGt:
      return MaskNumericCmpImm<_CMP_GT_OQ>(values, n, op, rhs, out);
    case Cmp::kGe:
      return MaskNumericCmpImm<_CMP_GE_OQ>(values, n, op, rhs, out);
  }
}

// Dense-word lane preparation, sixteen rows per vector op; same contract
// as the AVX2 tier (see simd_avx2.cc), adds stay scalar and row-ordered.

struct DenseLanes {
  int32_t idx[64];
  uint64_t valid;
};

inline void PrepareDenseLanes(const int32_t* cells, uint64_t tword,
                              DenseLanes* lanes) {
  const __m512i lane_ids = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                             11, 12, 13, 14, 15);
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i zero = _mm512_setzero_si512();
  uint64_t valid = 0;
  for (int g = 0; g < 4; ++g) {
    const __m512i c = _mm512_loadu_si512(cells + g * 16);
    const __m512i tbits =
        _mm512_set1_epi32(static_cast<int32_t>((tword >> (g * 16)) & 0xffff));
    const __m512i arm =
        _mm512_and_si512(_mm512_srlv_epi32(tbits, lane_ids), one);
    const __m512i idx = _mm512_add_epi32(_mm512_add_epi32(c, c), arm);
    _mm512_storeu_si512(lanes->idx + g * 16, idx);
    const uint64_t ge0 = _mm512_cmpge_epi32_mask(c, zero);
    valid |= ge0 << (g * 16);
  }
  lanes->valid = valid;
}

template <bool kSplit, bool kMoments>
void Avx512CateAccumulateImpl(const CateAccumArgs& args) {
  const uint64_t* gw = args.group_words;
  const uint64_t* tw = args.treated_words;
  const uint64_t* pw = args.protected_words;
  const int32_t* cell_of_row = args.cell_of_row;
  core::SinkCounters overall, prot, nonprot;
  DenseLanes lanes;
  for (size_t w = args.word_begin; w < args.word_end; ++w) {
    uint64_t bits = gw[w];
    if (bits == 0) continue;
    const uint64_t tword = tw[w];
    const uint64_t pword = kSplit ? pw[w] : 0;
    if (bits == ~0ULL) {
      if (args.dense_words != nullptr) ++*args.dense_words;
      const size_t base = w * 64;
      PrepareDenseLanes(cell_of_row + base, tword, &lanes);
      core::StagedDenseWord<kSplit, kMoments>(args, base, lanes.idx,
                                              lanes.valid, tword, pword,
                                              &overall, &prot, &nonprot);
      continue;
    }
    if (args.sparse_words != nullptr) ++*args.sparse_words;
    while (bits != 0) {
      const int b = __builtin_ctzll(bits);
      bits &= bits - 1;
      const size_t r = w * 64 + static_cast<size_t>(b);
      const int32_t c = cell_of_row[r];
      if (c < 0) continue;
      const int arm = static_cast<int>((tword >> b) & 1);
      const bool prot_bit = kSplit && (((pword >> b) & 1) != 0);
      core::AddRow<kSplit, kMoments>(args, r, c, arm, prot_bit, &overall,
                                     &prot, &nonprot);
    }
  }
  overall.FlushTo(args.overall);
  if (kSplit) {
    prot.FlushTo(args.prot);
    nonprot.FlushTo(args.nonprot);
  }
}

void Avx512CateAccumulate(const CateAccumArgs& args) {
  const bool split = args.protected_words != nullptr;
  if (split) {
    if (args.moments) {
      Avx512CateAccumulateImpl<true, true>(args);
    } else {
      Avx512CateAccumulateImpl<true, false>(args);
    }
  } else {
    if (args.moments) {
      Avx512CateAccumulateImpl<false, true>(args);
    } else {
      Avx512CateAccumulateImpl<false, false>(args);
    }
  }
}

template <bool kSplit>
bool Avx512CateAccumulateIntImpl(const CateAccumArgs& args) {
  const uint64_t* gw = args.group_words;
  const uint64_t* tw = args.treated_words;
  const uint64_t* pw = args.protected_words;
  const int32_t* cell_of_row = args.cell_of_row;
  core::SinkCounters overall, prot, nonprot;
  DenseLanes lanes;
  for (size_t w = args.word_begin; w < args.word_end; ++w) {
    uint64_t bits = gw[w];
    if (bits == 0) continue;
    if (overall.rows + 64 > args.safe_rows) {
      overall.FlushTo(args.overall);
      if (kSplit) {
        prot.FlushTo(args.prot);
        nonprot.FlushTo(args.nonprot);
      }
      core::FlushIntToFp(args, kSplit);
      CateAccumArgs rest = args;
      rest.word_begin = w;
      Avx512CateAccumulateImpl<kSplit, false>(rest);
      return false;
    }
    const uint64_t tword = tw[w];
    const uint64_t pword = kSplit ? pw[w] : 0;
    if (bits == ~0ULL) {
      if (args.dense_words != nullptr) ++*args.dense_words;
      const size_t base = w * 64;
      PrepareDenseLanes(cell_of_row + base, tword, &lanes);
      core::IntDenseWord<kSplit>(args, base, lanes.idx, lanes.valid, tword,
                                 pword, &overall, &prot, &nonprot);
      continue;
    }
    if (args.sparse_words != nullptr) ++*args.sparse_words;
    while (bits != 0) {
      const int b = __builtin_ctzll(bits);
      bits &= bits - 1;
      const size_t r = w * 64 + static_cast<size_t>(b);
      const int32_t c = cell_of_row[r];
      if (c < 0) continue;
      const int arm = static_cast<int>((tword >> b) & 1);
      const bool prot_bit = kSplit && (((pword >> b) & 1) != 0);
      core::AddRowInt<kSplit>(args, r, c, arm, prot_bit, &overall, &prot,
                              &nonprot);
    }
  }
  overall.FlushTo(args.overall);
  if (kSplit) {
    prot.FlushTo(args.prot);
    nonprot.FlushTo(args.nonprot);
  }
  return true;
}

bool Avx512CateAccumulateInt(const CateAccumArgs& args) {
  if (args.protected_words != nullptr) {
    return Avx512CateAccumulateIntImpl<true>(args);
  }
  return Avx512CateAccumulateIntImpl<false>(args);
}

const Kernels kAvx512Kernels = {
    Avx512Popcount,
    Avx512AndCount,
    Avx512AndNotCount,
    Avx512AndInplace,
    Avx512OrInplace,
    Avx512AndNotInplace,
    Avx512MaskCodesEq,
    Avx512MaskCodesNe,
    Avx512MaskNumericCmp,
    Avx512CateAccumulate,
    Avx512CateAccumulateInt,
};

}  // namespace

const Kernels* GetAvx512Kernels() { return &kAvx512Kernels; }

}  // namespace simd
}  // namespace faircap
