// Runtime-dispatched SIMD kernel layer for the two hot inner loops of the
// pipeline: bitmap word algebra (AND/ANDNOT/popcount and the word-batched
// predicate compare scans) and the CateStatsEngine per-(cell, arm)
// sufficient-statistics accumulation.
//
// Kernels come in up to three ISA tiers — scalar, AVX2, AVX-512 — compiled
// in separate translation units with per-file -march flags, selected ONCE
// at startup by CPUID and overridable with the FAIRCAP_SIMD environment
// knob (scalar|avx2|avx512) or SetSimdLevel (the CLI's --simd= flag). Every
// tier is pinned to produce identical results: counts and mask words are
// exact integers, and the accumulation kernels perform their float adds in
// the same ascending-row association order as the scalar loop, so the
// repo's bit-for-bit determinism contracts (shard counts, thread counts,
// legacy-oracle pinning) hold at every ISA level.

#ifndef FAIRCAP_UTIL_SIMD_SIMD_H_
#define FAIRCAP_UTIL_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace faircap {
namespace simd {

/// ISA tiers, ascending. Dispatch never selects a tier the host CPU (or
/// the build) does not support; kAvx512 additionally requires the
/// AVX-512VPOPCNTDQ extension its popcount kernels are compiled against.
enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// "scalar" / "avx2" / "avx512".
const char* SimdLevelName(SimdLevel level);

/// Parses a FAIRCAP_SIMD / --simd= spelling. Returns false on an unknown
/// name (level is untouched).
bool ParseSimdLevel(const std::string& name, SimdLevel* level);

/// Highest tier both compiled into this binary and supported by the host
/// CPU (CPUID, probed once).
SimdLevel MaxSupportedSimdLevel();

/// All usable tiers, ascending; always contains kScalar. Test sweeps and
/// the per-ISA benches iterate this.
std::vector<SimdLevel> SupportedSimdLevels();

/// The tier kernels currently dispatch to. Resolved on first use: the
/// FAIRCAP_SIMD environment knob if set (clamped to the supported maximum
/// with a one-time stderr warning if it asks for more than the host has),
/// otherwise MaxSupportedSimdLevel().
SimdLevel ActiveSimdLevel();

/// Pins dispatch to `level` for the rest of the process (or until the
/// next call). Fails with InvalidArgument if the tier is not supported on
/// this host/build. Thread-safe, but callers should pin before spawning
/// workers: a mid-flight switch is benign for results (every tier is
/// bit-identical) yet makes throughput numbers meaningless.
Status SetSimdLevel(SimdLevel level);

/// RAII level pin for tests: sets `level`, restores the previous level on
/// destruction.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level);
  ~ScopedSimdLevel();
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  SimdLevel previous_;
};

/// Comparison op for the numeric compare-scan kernel (mirrors the
/// dataframe layer's CompareOp, which util cannot include).
enum class Cmp : int { kEq = 0, kNe = 1, kLt = 2, kLe = 3, kGt = 4, kGe = 5 };

/// One subgroup accumulator's raw statistic slots (the kernel-facing view
/// of CateStatsEngine::Accum). All arrays are cell-major with two arms
/// (idx = 2*cell + arm); the z* arrays are null unless moments are
/// accumulated.
struct CateSink {
  size_t* rows = nullptr;       ///< subgroup rows with non-null outcome
  size_t* n_treated = nullptr;
  size_t* n_control = nullptr;
  uint32_t* n = nullptr;        ///< [2C + 2] (two scratch slots, see below)
  double* sy = nullptr;         ///< [2C + 2]
  double* syy = nullptr;        ///< [2C + 2]
  double* zsum = nullptr;       ///< [2C * m]
  double* zysum = nullptr;      ///< [2C * m]
  double* zzsum = nullptr;      ///< [2C * m(m+1)/2], upper-tri packed
  /// Integer staging arrays for the exact int64 fast path, [2C + 2]; null
  /// unless the caller enables cate_accumulate_int. The two slots past
  /// num_slots are write-only scratch the branchless dense loop steers
  /// excluded rows into (so the loop carries no per-row validity branch);
  /// they are never read back.
  int64_t* isy = nullptr;
  int64_t* isyy = nullptr;
};

/// Inputs of the fused accumulation pass: three bitmaps walked in
/// lockstep over one word range, the row->cell map, the outcome cache
/// line, and (for the regression-with-numeric-confounders case) the
/// cached numeric confounder columns.
struct CateAccumArgs {
  const uint64_t* group_words = nullptr;
  const uint64_t* treated_words = nullptr;
  /// Null: no protected split (prot/nonprot sinks unused).
  const uint64_t* protected_words = nullptr;
  const int32_t* cell_of_row = nullptr;  ///< -1 = excluded row
  const double* outcome = nullptr;
  /// Numeric confounder columns, [num_numeric] pointers; null when
  /// moments is false.
  const double* const* zcols = nullptr;
  size_t num_numeric = 0;
  bool moments = false;
  size_t word_begin = 0;
  size_t word_end = 0;
  /// Number of real (cell, arm) slots = 2 * num_cells. Sink stat arrays
  /// are allocated with two extra scratch slots past this count.
  size_t num_slots = 0;
  /// Integer outcome cache (nulls stored as 0, excluded via cell_of_row);
  /// non-null iff the outcome column is integer-valued. Consumed only by
  /// cate_accumulate_int.
  const int64_t* outcome_i64 = nullptr;
  /// Overflow guard for the integer path: the largest row count for which
  /// every per-slot partial |Σy| and Σy² provably stays below 2^53 (so
  /// both the int64 totals and the legacy FP partial sums are exact).
  /// cate_accumulate_int falls back to the FP path once a word would
  /// cross this budget.
  uint64_t safe_rows = 0;
  /// Optional pass statistics (word mix served), for the obs path
  /// breakdown. Incremented, not reset, by the kernels when non-null.
  size_t* dense_words = nullptr;
  size_t* sparse_words = nullptr;
  CateSink overall;
  CateSink prot;
  CateSink nonprot;
};

/// The per-ISA kernel table. Results are identical across tiers (see file
/// comment); only throughput differs.
struct Kernels {
  /// Σ popcount(words[i]).
  size_t (*popcount)(const uint64_t* words, size_t num_words);
  /// Σ popcount(a[i] & b[i]) — fused intersection cardinality.
  size_t (*and_count)(const uint64_t* a, const uint64_t* b, size_t num_words);
  /// Σ popcount(a[i] & ~b[i]) — fused difference cardinality.
  size_t (*andnot_count)(const uint64_t* a, const uint64_t* b,
                         size_t num_words);
  /// a[i] &= b[i] / a[i] |= b[i] / a[i] &= ~b[i].
  void (*and_inplace)(uint64_t* a, const uint64_t* b, size_t num_words);
  void (*or_inplace)(uint64_t* a, const uint64_t* b, size_t num_words);
  void (*andnot_inplace)(uint64_t* a, const uint64_t* b, size_t num_words);
  /// Writes ceil(n/64) mask words: bit r set iff codes[r] == code.
  /// Every word is fully overwritten; padding bits past n stay clear.
  void (*mask_codes_eq)(const int32_t* codes, size_t n, int32_t code,
                        uint64_t* out);
  /// Bit r set iff codes[r] != null_code && codes[r] != code (the kNe /
  /// out-of-dictionary scan: null never matches any operator).
  void (*mask_codes_ne)(const int32_t* codes, size_t n, int32_t null_code,
                        int32_t code, uint64_t* out);
  /// Bit r set iff !isnan(values[r]) && cmp(values[r], op, rhs) — NaN
  /// cells are nulls and excluded under every operator, kNe included.
  void (*mask_numeric_cmp)(const double* values, size_t n, Cmp op, double rhs,
                           uint64_t* out);
  /// The fused CateStatsEngine accumulation pass over one word range:
  /// group/treated(/protected) bitmaps in lockstep, per-(cell, arm)
  /// {n, Σy, Σy²} (+ numeric moments) into the overall sink and, when
  /// splitting, the protected-or-nonprotected sink — each bitmap word and
  /// outcome cache line touched once. Integer stats are exact; float adds
  /// run in ascending row order with the scalar loop's associations.
  void (*cate_accumulate)(const CateAccumArgs& args);
  /// The exact integer fast path: same pass as cate_accumulate but
  /// accumulating {n, Σy, Σy²} in int64 (args.outcome_i64), where integer
  /// addition is associative so vector tiers are free to reassociate and
  /// run branchless full-width dense-word loops. Requires !args.moments.
  /// Returns true when the whole range completed on the integer path (the
  /// isy/isyy arrays are authoritative); returns false when the
  /// args.safe_rows overflow guard tripped — the integer partials were
  /// exactly flushed into sy/syy and the remainder of the range ran
  /// through the FP path, so the FP arrays are authoritative and carry
  /// the bit-exact legacy result.
  bool (*cate_accumulate_int)(const CateAccumArgs& args);
};

/// Kernel table for the currently active tier (one atomic load).
const Kernels& ActiveKernels();

/// Kernel table for a specific tier, or null if that tier is unavailable
/// on this host/build — lets tests and benches pin a path explicitly.
const Kernels* KernelsFor(SimdLevel level);

}  // namespace simd
}  // namespace faircap

#endif  // FAIRCAP_UTIL_SIMD_SIMD_H_
