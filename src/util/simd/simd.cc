// Dispatch: CPUID probing, the FAIRCAP_SIMD knob, level pinning, and the
// scalar kernel tier. The AVX2/AVX-512 tiers live in their own
// translation units (simd_avx2.cc / simd_avx512.cc) compiled with
// per-file -march flags; FAIRCAP_SIMD_HAVE_* say whether the build
// included them.

#include "util/simd/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/obs/metrics.h"
#include "util/simd/simd_kernels_core.h"

namespace faircap {
namespace simd {

#if FAIRCAP_SIMD_HAVE_AVX2
const Kernels* GetAvx2Kernels();  // simd_avx2.cc
#endif
#if FAIRCAP_SIMD_HAVE_AVX512
const Kernels* GetAvx512Kernels();  // simd_avx512.cc
#endif

namespace {

void ScalarCateAccumulateKernel(const CateAccumArgs& args) {
  core::ScalarCateAccumulate(args);
}

bool ScalarCateAccumulateIntKernel(const CateAccumArgs& args) {
  return core::ScalarCateAccumulateInt(args);
}

const Kernels kScalarKernels = {
    core::ScalarPopcount,
    core::ScalarAndCount,
    core::ScalarAndNotCount,
    core::ScalarAndInplace,
    core::ScalarOrInplace,
    core::ScalarAndNotInplace,
    core::ScalarMaskCodesEq,
    core::ScalarMaskCodesNe,
    core::ScalarMaskNumericCmp,
    ScalarCateAccumulateKernel,
    ScalarCateAccumulateIntKernel,
};

SimdLevel DetectMaxLevel() {
#if FAIRCAP_SIMD_HAVE_AVX2 || FAIRCAP_SIMD_HAVE_AVX512
  __builtin_cpu_init();
#endif
#if FAIRCAP_SIMD_HAVE_AVX512
  // The AVX-512 tier is compiled against F/BW/DQ/VL plus VPOPCNTDQ (its
  // popcount kernels); require all of them before dispatching to it.
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512vpopcntdq")) {
    return SimdLevel::kAvx512;
  }
#endif
#if FAIRCAP_SIMD_HAVE_AVX2
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

// The active tier's kernel table; null until first resolution. Kernel
// lookups are one acquire load on this pointer.
std::atomic<const Kernels*> g_active_kernels{nullptr};
std::atomic<int> g_active_level{-1};
std::once_flag g_init_once;

void ResolveStartupLevel() {
  SimdLevel level = MaxSupportedSimdLevel();
  // Under std::call_once, before kernels dispatch; no setenv in-process.
  const char* env = std::getenv("FAIRCAP_SIMD");  // NOLINT(concurrency-mt-unsafe)
  if (env != nullptr && env[0] != '\0') {
    SimdLevel requested;
    if (!ParseSimdLevel(env, &requested)) {
      std::fprintf(stderr,
                   "faircap: ignoring unknown FAIRCAP_SIMD value '%s' "
                   "(want scalar|avx2|avx512)\n",
                   env);
    } else if (requested > level) {
      // Clamp rather than fail: an over-ambitious pin on a lesser host
      // still runs (results are identical at every tier), it just cannot
      // exercise the missing ISA.
      std::fprintf(stderr,
                   "faircap: FAIRCAP_SIMD=%s not supported on this host; "
                   "using %s\n",
                   env, SimdLevelName(level));
    } else {
      level = requested;
    }
  }
  g_active_level.store(static_cast<int>(level), std::memory_order_relaxed);
  g_active_kernels.store(KernelsFor(level), std::memory_order_release);
  obs::MetricsRegistry::Global()
      .GetGauge("simd.level")
      .Set(static_cast<double>(level));
}

void EnsureResolved() { std::call_once(g_init_once, ResolveStartupLevel); }

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kAvx512: return "avx512";
  }
  return "unknown";
}

bool ParseSimdLevel(const std::string& name, SimdLevel* level) {
  if (name == "scalar") {
    *level = SimdLevel::kScalar;
  } else if (name == "avx2") {
    *level = SimdLevel::kAvx2;
  } else if (name == "avx512") {
    *level = SimdLevel::kAvx512;
  } else {
    return false;
  }
  return true;
}

SimdLevel MaxSupportedSimdLevel() {
  static const SimdLevel level = DetectMaxLevel();
  return level;
}

std::vector<SimdLevel> SupportedSimdLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  const SimdLevel max = MaxSupportedSimdLevel();
  if (max >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  if (max >= SimdLevel::kAvx512) levels.push_back(SimdLevel::kAvx512);
  return levels;
}

SimdLevel ActiveSimdLevel() {
  EnsureResolved();
  return static_cast<SimdLevel>(
      g_active_level.load(std::memory_order_relaxed));
}

Status SetSimdLevel(SimdLevel level) {
  EnsureResolved();
  const Kernels* kernels = KernelsFor(level);
  if (kernels == nullptr) {
    return Status::InvalidArgument(
        std::string("SIMD level '") + SimdLevelName(level) +
        "' is not supported on this host/build (max: " +
        SimdLevelName(MaxSupportedSimdLevel()) + ")");
  }
  g_active_level.store(static_cast<int>(level), std::memory_order_relaxed);
  g_active_kernels.store(kernels, std::memory_order_release);
  obs::MetricsRegistry::Global()
      .GetGauge("simd.level")
      .Set(static_cast<double>(level));
  return Status::OK();
}

ScopedSimdLevel::ScopedSimdLevel(SimdLevel level)
    : previous_(ActiveSimdLevel()) {
  const Status status = SetSimdLevel(level);
  (void)status;  // tests pin only levels from SupportedSimdLevels()
}

ScopedSimdLevel::~ScopedSimdLevel() {
  const Status status = SetSimdLevel(previous_);
  (void)status;
}

const Kernels& ActiveKernels() {
  EnsureResolved();
  return *g_active_kernels.load(std::memory_order_acquire);
}

const Kernels* KernelsFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return &kScalarKernels;
    case SimdLevel::kAvx2:
#if FAIRCAP_SIMD_HAVE_AVX2
      if (MaxSupportedSimdLevel() >= SimdLevel::kAvx2) {
        return GetAvx2Kernels();
      }
#endif
      return nullptr;
    case SimdLevel::kAvx512:
#if FAIRCAP_SIMD_HAVE_AVX512
      if (MaxSupportedSimdLevel() >= SimdLevel::kAvx512) {
        return GetAvx512Kernels();
      }
#endif
      return nullptr;
  }
  return nullptr;
}

}  // namespace simd
}  // namespace faircap
