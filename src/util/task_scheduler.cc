#include "util/task_scheduler.h"

#include <cassert>
#include <chrono>
#include <string>
#include <utility>

#include "util/obs/metrics.h"
#include "util/obs/trace.h"

namespace faircap {

namespace {

// Worker identity of the current thread (null scheduler when the thread
// is not a scheduler worker). Lets Submit() route to the caller's own
// deque and Wait() pop it LIFO.
thread_local TaskScheduler* tls_scheduler = nullptr;
thread_local size_t tls_worker_index = 0;

// Stack of groups whose tasks are executing on this thread right now.
// Wait() walks it to discount its own frames: a task waiting on its own
// group must not wait for itself (ThreadPool::Wait from inside a
// submitted task — the old pool's silent deadlock).
struct RunningFrame {
  TaskGroup* group;
  RunningFrame* prev;
};
thread_local RunningFrame* tls_running = nullptr;

size_t RunningFramesOf(const TaskGroup* group) {
  size_t count = 0;
  for (RunningFrame* f = tls_running; f != nullptr; f = f->prev) {
    if (f->group == group) ++count;
  }
  return count;
}

}  // namespace

// ---------------------------------------------------------------------------
// TaskGroup

TaskGroup::~TaskGroup() {
  try {
    Wait();
  } catch (...) {
    // Destructor must not throw; observing task errors requires an
    // explicit Wait().
  }
}

void TaskGroup::Submit(std::function<void()> task) {
  if (scheduler_ == nullptr) {
    // Inline degradation: same completion/exception protocol, no queues.
    pending_.fetch_add(1, std::memory_order_relaxed);
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    TaskDone(std::move(error));
    return;
  }
  scheduler_->Enqueue(this, std::move(task));
}

void TaskGroup::TaskDone(std::exception_ptr error) {
  // The whole completion protocol runs under mu_. This is a lifetime
  // guarantee, not just a wakeup ordering: a waiter that observes the
  // final decrement — even through Wait()'s lock-free fast path — must
  // acquire mu_ once before returning, which cannot happen until this
  // critical section releases. Without that handshake the waiter could
  // destroy the group (per-evaluation groups are stack-local) while the
  // finishing task is still inside notify, a use-after-free that shows
  // up as a worker hung on a dead mutex.
  MutexLock lock(mu_);
  if (error != nullptr && error_ == nullptr) error_ = std::move(error);
  const size_t left = pending_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  // Wake waiters at 0 (a plain Wait) and at 1 (a Wait from inside one of
  // this group's own tasks discounts its own frame and drains at 1);
  // deeper same-group nesting is covered by the waiters' periodic rescan.
  if (left <= 1) idle_.NotifyAll();
}

void TaskGroup::RethrowIfError() {
  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    error = std::exchange(error_, nullptr);
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void TaskGroup::Wait() {
  // Frames of this group already executing on *this* thread can never be
  // waited out from inside themselves; everything else must drain.
  const size_t self = RunningFramesOf(this);
  while (pending_.load(std::memory_order_acquire) > self) {
    TaskScheduler::Task task;
    if (scheduler_ != nullptr && scheduler_->TryGetGroupTask(this, &task)) {
      scheduler_->helped_.fetch_add(1, std::memory_order_relaxed);
      scheduler_->Execute(std::move(task));
      continue;
    }
    // Every remaining task is running on another thread. Those threads
    // bottom out at leaf tasks, so this wait is bounded; the timeout is a
    // belt-and-braces rescan, not a correctness requirement (both TaskDone
    // and Enqueue notify, so any state change wakes this immediately).
    MutexLock lock(mu_);
    if (pending_.load(std::memory_order_acquire) > self) {
      idle_.WaitFor(mu_, std::chrono::milliseconds(1));
    }
  }
  if (self == 0) {
    RethrowIfError();  // takes mu_: synchronizes with the final TaskDone
  } else {
    // Synchronize with the final TaskDone before returning (it holds mu_
    // across its decrement+notify; see the lifetime note there).
    MutexLock lock(mu_);
  }
}

void TaskGroup::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (scheduler_ == nullptr || scheduler_->num_threads() <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Dynamic chunking: enough chunks that stealing can balance uneven
  // costs, few enough that dispatch stays negligible. The shared cursor
  // only affects which worker runs which indices — results are indexed
  // by i, so scheduling order never shows in the output.
  const size_t chunks = std::min(n, scheduler_->num_threads() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  auto next_chunk = std::make_shared<std::atomic<size_t>>(0);
  for (size_t c = 0; c < chunks; ++c) {
    Submit([next_chunk, chunk_size, n, &fn] {
      for (;;) {
        const size_t chunk =
            next_chunk->fetch_add(1, std::memory_order_relaxed);
        const size_t begin = chunk * chunk_size;
        if (begin >= n) return;
        const size_t end = std::min(begin + chunk_size, n);
        for (size_t i = begin; i < end; ++i) fn(i);
      }
    });
  }
  Wait();
}

// ---------------------------------------------------------------------------
// TaskScheduler

TaskScheduler::TaskScheduler(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Threads start only after every Worker exists: a fast first worker
  // must not steal-scan a vector that is still growing.
  for (size_t i = 0; i < num_threads; ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter& instances = registry.GetCounter("scheduler.instances");
  instances.Increment();
  registry.GetGauge("scheduler.workers")
      .Set(static_cast<double>(num_threads));
}

TaskScheduler::~TaskScheduler() {
  {
    MutexLock lock(sleep_mu_);
    shutdown_ = true;
  }
  wake_.NotifyAll();
  for (auto& w : workers_) w->thread.join();
  assert(num_queued_.load() == 0 &&
         "tasks left behind: a TaskGroup outlived its scheduler");
  // Flush lifetime totals into the global registry once, at teardown:
  // zero hot-path cost, and the run report (written after the pipeline
  // destroys its scheduler) sees the full per-run numbers.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("scheduler.submitted")
      .Add(submitted_.load(std::memory_order_relaxed));
  registry.GetCounter("scheduler.executed")
      .Add(executed_.load(std::memory_order_relaxed));
  registry.GetCounter("scheduler.stolen")
      .Add(stolen_.load(std::memory_order_relaxed));
  registry.GetCounter("scheduler.helped")
      .Add(helped_.load(std::memory_order_relaxed));
}

void TaskScheduler::Enqueue(TaskGroup* group, std::function<void()> fn) {
  group->pending_.fetch_add(1, std::memory_order_relaxed);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Task task{std::move(fn), group};
  if (tls_scheduler == this) {
    Worker& self = *workers_[tls_worker_index];
    MutexLock lock(self.mu);
    self.deque.push_back(std::move(task));
  } else {
    MutexLock lock(injected_mu_);
    injected_.push_back(std::move(task));
  }
  num_queued_.fetch_add(1, std::memory_order_release);
  {
    // Empty critical section: orders the wake after a racing sleeper's
    // queue recheck, so the notify cannot slip between its check and its
    // wait.
    MutexLock lock(sleep_mu_);
  }
  wake_.NotifyOne();
  // A Wait() blocked on this group must also rescan: the new task might
  // be the one it can help with. Notify under the lock — the group must
  // not be touched after a waiter could have observed completion.
  {
    MutexLock lock(group->mu_);
    group->idle_.NotifyAll();
  }
}

bool TaskScheduler::TryGetTask(size_t worker_index, Task* out) {
  // Own deque, owner side (LIFO keeps the innermost-spawned work local
  // and cache-hot).
  {
    Worker& self = *workers_[worker_index];
    MutexLock lock(self.mu);
    if (!self.deque.empty()) {
      *out = std::move(self.deque.back());
      self.deque.pop_back();
      num_queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Injection queue (external submissions), FIFO.
  {
    MutexLock lock(injected_mu_);
    if (!injected_.empty()) {
      *out = std::move(injected_.front());
      injected_.pop_front();
      num_queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal from a sibling, thief side (FIFO takes the oldest, typically
  // largest-remaining task — classic work-stealing heuristic).
  const size_t n = workers_.size();
  for (size_t offset = 1; offset < n; ++offset) {
    Worker& victim = *workers_[(worker_index + offset) % n];
    MutexLock lock(victim.mu);
    if (!victim.deque.empty()) {
      *out = std::move(victim.deque.front());
      victim.deque.pop_front();
      num_queued_.fetch_sub(1, std::memory_order_relaxed);
      stolen_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

bool TaskScheduler::TryGetGroupTask(TaskGroup* group, Task* out) {
  // Scans whole deques rather than just the steal end: a waiter must be
  // able to reach ANY queued task of its group, or it could block while
  // runnable work sits buried under another group's tasks. Deques are
  // short (tasks are coarse), so the scan is cheap.
  auto take_from = [&](std::deque<Task>& deque) {
    for (auto it = deque.end(); it != deque.begin();) {
      --it;  // newest-first mirrors the owner's LIFO order
      if (it->group == group) {
        *out = std::move(*it);
        deque.erase(it);
        num_queued_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  };
  if (tls_scheduler == this) {
    Worker& self = *workers_[tls_worker_index];
    MutexLock lock(self.mu);
    if (take_from(self.deque)) return true;
  }
  {
    MutexLock lock(injected_mu_);
    if (take_from(injected_)) return true;
  }
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (tls_scheduler == this && i == tls_worker_index) continue;
    Worker& victim = *workers_[i];
    MutexLock lock(victim.mu);
    // Not counted as stolen: the caller counts it as helped, and the two
    // stats are meant to partition the executed tasks.
    if (take_from(victim.deque)) return true;
  }
  return false;
}

void TaskScheduler::Execute(Task task) {
  RunningFrame frame{task.group, tls_running};
  tls_running = &frame;
  std::exception_ptr error;
  try {
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }
  tls_running = frame.prev;
  executed_.fetch_add(1, std::memory_order_relaxed);
  task.group->TaskDone(std::move(error));
}

void TaskScheduler::WorkerLoop(size_t index) {
  tls_scheduler = this;
  tls_worker_index = index;
  obs::SetThreadTraceName("worker-" + std::to_string(index));
  for (;;) {
    Task task;
    if (TryGetTask(index, &task)) {
      Execute(std::move(task));
      continue;
    }
    // Manual wait loop (not the predicate overload): the predicate reads
    // the guarded shutdown_ flag, and thread-safety analysis cannot see
    // into a lambda invoked by std:: wait machinery. Spelled out, every
    // shutdown_ access visibly happens under sleep_mu_.
    MutexLock lock(sleep_mu_);
    if (shutdown_ && num_queued_.load(std::memory_order_acquire) == 0) {
      break;
    }
    while (!shutdown_ &&
           num_queued_.load(std::memory_order_acquire) == 0) {
      wake_.Wait(sleep_mu_);
    }
    if (shutdown_ && num_queued_.load(std::memory_order_acquire) == 0) {
      break;
    }
  }
  tls_scheduler = nullptr;
}

void TaskScheduler::ParallelFor(size_t n,
                                const std::function<void(size_t)>& fn) {
  TaskGroup group(this);
  group.ParallelFor(n, fn);
}

TaskScheduler::Stats TaskScheduler::GetStats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.executed = executed_.load(std::memory_order_relaxed);
  stats.stolen = stolen_.load(std::memory_order_relaxed);
  stats.helped = helped_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace faircap
