// Fixed-size thread pool used to parallelize intervention-pattern mining
// across grouping patterns (optimization (ii) in Section 5.2 of the paper).

#ifndef FAIRCAP_UTIL_THREADPOOL_H_
#define FAIRCAP_UTIL_THREADPOOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace faircap {

/// Fixed-size worker pool. Submit() enqueues tasks; Wait() blocks until the
/// queue drains and all in-flight tasks finish. The destructor joins all
/// workers.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 means hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace faircap

#endif  // FAIRCAP_UTIL_THREADPOOL_H_
