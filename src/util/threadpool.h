// ThreadPool: compatibility adapter over the work-stealing TaskScheduler
// (util/task_scheduler.h). The original fixed pool had a single FIFO and
// a blocking Wait(), so calling ParallelFor or Wait from inside a task
// deadlocked silently — sharded mining had to keep grouping patterns
// sequential. The adapter keeps the old API (Submit / Wait /
// ParallelFor / num_threads) byte-compatible for existing call sites but
// routes everything through a scheduler, which makes both calls legal
// from worker threads: ParallelFor backs each call with a fresh
// TaskGroup (fully reentrant), and Wait from inside a submitted task
// waits for every *other* pending task instead of deadlocking on itself.

#ifndef FAIRCAP_UTIL_THREADPOOL_H_
#define FAIRCAP_UTIL_THREADPOOL_H_

#include <functional>

#include "util/task_scheduler.h"

namespace faircap {

/// Fixed-size worker pool API over a work-stealing scheduler. Submit()
/// enqueues tasks; Wait() drains them (helping — executing pending tasks
/// inline — rather than blocking, so it is legal from a worker thread).
class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 means hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0)
      : scheduler_(num_threads), group_(&scheduler_) {}

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task) { group_.Submit(std::move(task)); }

  /// Waits until all submitted tasks have completed, executing pending
  /// ones inline. From inside a submitted task, waits for all *other*
  /// tasks (the old pool deadlocked here). Rethrows the first exception
  /// a task raised.
  void Wait() { group_.Wait(); }

  size_t num_threads() const { return scheduler_.num_threads(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Reentrant: legal from inside a task running on this pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    scheduler_.ParallelFor(n, fn);
  }

  /// The underlying scheduler (shared with code that takes TaskGroups).
  TaskScheduler& scheduler() { return scheduler_; }

 private:
  TaskScheduler scheduler_;
  TaskGroup group_;  // declared after scheduler_: drains before teardown
};

}  // namespace faircap

#endif  // FAIRCAP_UTIL_THREADPOOL_H_
