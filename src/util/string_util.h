// Small string helpers shared across CSV parsing and rule rendering.

#ifndef FAIRCAP_UTIL_STRING_UTIL_H_
#define FAIRCAP_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace faircap {

/// Splits `s` on `delim`; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Parses a double; returns false on malformed input.
bool ParseDouble(std::string_view s, double* out);

/// Parses a signed 64-bit integer; returns false on malformed input.
bool ParseInt64(std::string_view s, int64_t* out);

/// Formats a double compactly (trailing zeros trimmed, up to 6 significant
/// decimals), matching the tables in the paper.
std::string FormatDouble(double v);

}  // namespace faircap

#endif  // FAIRCAP_UTIL_STRING_UTIL_H_
