// TaskScheduler: work-stealing execution engine behind every parallel
// phase of the pipeline. The fixed ThreadPool it replaces had one global
// FIFO and a blocking Wait(), so a task could never wait for child tasks
// on the same pool — sharded Step-2 mining had to serialize grouping
// patterns and run only the shard axis in parallel. Here each worker owns
// a Chase–Lev-style deque (owner pushes/pops LIFO at the bottom, thieves
// take FIFO from the top), external threads inject through a shared
// queue, and TaskGroup::Wait() *helps* — it finds and executes pending
// tasks of its own group (own deque first, then the injection queue, then
// other workers' deques) instead of blocking while any are runnable. That
// makes nested submission legal and deadlock-free by construction:
//
//   * a task may create a TaskGroup and ParallelFor over it (the Step-2
//     pattern x shard graph: each pattern task fans its treatment
//     evaluations' sufficient-statistics passes out as child shard tasks
//     on the same workers);
//   * Wait() blocks only when every task of its group is already running
//     on some other thread — and those threads bottom out at leaf tasks,
//     so progress is guaranteed;
//   * determinism is unaffected by stealing: callers index results by
//     task id and merge in a fixed order, so which worker ran what never
//     changes a result.
//
// The deques are small and mutex-guarded (tasks here are coarse — a shard
// accumulation pass, a pattern mining run — so queue operations are not
// the bottleneck; a lock-free Chase–Lev buys nothing at this granularity
// and costs TSan-auditable subtlety). Exceptions thrown by tasks are
// captured per group and rethrown from Wait().

#ifndef FAIRCAP_UTIL_TASK_SCHEDULER_H_
#define FAIRCAP_UTIL_TASK_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace faircap {

class TaskScheduler;

/// Completion handle for a set of related tasks. Submit() enqueues work
/// onto the group's scheduler; Wait() executes pending group tasks
/// inline until none remain, then blocks for the stragglers running on
/// other workers, and rethrows the first exception any task raised.
/// A TaskGroup with a null scheduler degrades to inline execution —
/// Submit() runs the task immediately on the calling thread — so
/// sequential paths share the same call shape as parallel ones.
///
/// Wait() is legal from any thread, including a scheduler worker that is
/// itself inside a task (that is the whole point: nested ParallelFor).
/// When called from inside one of this group's own tasks, Wait() waits
/// for every *other* task of the group (the running task cannot wait for
/// itself). Each group is meant to be waited by the thread that submits
/// into it; concurrent Wait() from several threads is safe but the
/// exception (if any) is delivered to only one of them.
class TaskGroup {
 public:
  explicit TaskGroup(TaskScheduler* scheduler = nullptr)
      : scheduler_(scheduler) {}
  /// Waits for stragglers; exceptions still pending at destruction are
  /// dropped (call Wait() yourself to observe them).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `task`. With a null scheduler, runs it inline instead
  /// (exceptions are captured for Wait() in both cases).
  void Submit(std::function<void()> task);

  /// Executes / waits until every submitted task has finished, then
  /// rethrows the first captured exception, if any.
  void Wait();

  /// Runs fn(i) for i in [0, n) as tasks of this group and waits.
  /// Chunked dynamically (work-stealing balances uneven costs); safe to
  /// call from inside another task — including another ParallelFor — on
  /// the same scheduler.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  TaskScheduler* scheduler() const { return scheduler_; }

 private:
  friend class TaskScheduler;

  /// Completion hook run by the scheduler after each task (also used by
  /// the inline path). Records the first error, decrements pending, and
  /// wakes waiters when the group drains.
  void TaskDone(std::exception_ptr error) EXCLUDES(mu_);
  void RethrowIfError() EXCLUDES(mu_);

  TaskScheduler* scheduler_;
  std::atomic<size_t> pending_{0};
  Mutex mu_;
  CondVar idle_;                               // signaled when pending_ hits 0
  std::exception_ptr error_ GUARDED_BY(mu_);   // first failure
};

/// The worker pool. One instance runs every parallel axis of a pipeline
/// invocation (patterns, shards, ingest chunks) so the axes share workers
/// instead of competing through separate pools.
class TaskScheduler {
 public:
  /// Execution counters (surfaced by the CLI after a run). `executed`
  /// counts every task; `stolen` the ones a worker took from another
  /// worker's deque; `helped` the ones run inline by a Wait()ing thread
  /// instead of blocking.
  struct Stats {
    uint64_t submitted = 0;
    uint64_t executed = 0;
    uint64_t stolen = 0;
    uint64_t helped = 0;
  };

  /// Creates `num_threads` workers (0 means hardware concurrency).
  explicit TaskScheduler(size_t num_threads = 0);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits. Reentrant:
  /// legal from inside a task of this scheduler (a fresh TaskGroup backs
  /// each call).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  Stats GetStats() const;

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };

  /// One worker: a deque (back = owner side, front = steal side) behind
  /// a private mutex, plus the thread itself.
  struct Worker {
    Mutex mu;
    std::deque<Task> deque GUARDED_BY(mu);
    std::thread thread;
  };

  void WorkerLoop(size_t index);

  /// Enqueues a task of `group`: onto the calling worker's own deque when
  /// the caller is one of this scheduler's workers, else onto the shared
  /// injection queue.
  void Enqueue(TaskGroup* group, std::function<void()> fn);

  /// Generic acquisition for the worker loop: own deque (LIFO), then the
  /// injection queue, then stealing (FIFO) from siblings.
  bool TryGetTask(size_t worker_index, Task* out);

  /// Wait()-side acquisition: a pending task belonging to `group`, from
  /// anywhere (own deque, injection queue, any worker's deque). Scans
  /// whole deques, not just the steal end, so a group task can never be
  /// buried out of its waiter's reach.
  bool TryGetGroupTask(TaskGroup* group, Task* out);

  /// Runs the task and fires its group's completion hook.
  void Execute(Task task);

  std::vector<std::unique_ptr<Worker>> workers_;
  Mutex injected_mu_;
  std::deque<Task> injected_ GUARDED_BY(injected_mu_);  // external submissions
  Mutex sleep_mu_;                  // worker idle/wake handshake
  CondVar wake_;
  std::atomic<size_t> num_queued_{0};  // tasks sitting in any queue
  bool shutdown_ GUARDED_BY(sleep_mu_) = false;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> stolen_{0};
  std::atomic<uint64_t> helped_{0};
};

}  // namespace faircap

#endif  // FAIRCAP_UTIL_TASK_SCHEDULER_H_
