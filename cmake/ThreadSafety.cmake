# Clang Thread Safety Analysis gate.
#
# Under Clang, every TU is compiled with -Wthread-safety promoted to an
# error, so an unguarded access to a GUARDED_BY field or a ...Locked()
# call without REQUIRES fails the build (the CI static-analysis job runs
# exactly this configuration). Under GCC the annotation macros expand to
# nothing and this file only registers the (skipped) fixture check.
#
# Two configure-time try_compile fixtures prove the gate is live rather
# than silently inert:
#   * tests/fixtures/thread_safety_positive.cc — correctly locked code;
#     must COMPILE under the analysis flags.
#   * tests/fixtures/thread_safety_negative.cc — reads a GUARDED_BY field
#     without the lock; must FAIL to compile. If it compiles, the
#     analysis is not firing (wrong flags, broken macros) and the
#     configure step dies with FATAL_ERROR instead of shipping a gate
#     that checks nothing.

if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  message(STATUS "Thread safety analysis: skipped (requires Clang, "
                 "compiler is ${CMAKE_CXX_COMPILER_ID})")
  return()
endif()

set(FAIRCAP_THREAD_SAFETY_FLAGS -Wthread-safety -Werror=thread-safety)
add_compile_options(${FAIRCAP_THREAD_SAFETY_FLAGS})
message(STATUS "Thread safety analysis: enabled (${FAIRCAP_THREAD_SAFETY_FLAGS})")

# ---------------------------------------------------------------------------
# Fixture self-check: the analysis must accept the positive fixture and
# reject the negative one, or the gate is broken.

function(_faircap_try_thread_safety_fixture fixture out_var)
  try_compile(${out_var}
    ${CMAKE_BINARY_DIR}/thread_safety_fixture_checks
    SOURCES ${CMAKE_SOURCE_DIR}/tests/fixtures/${fixture}
    CMAKE_FLAGS
      "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src"
      "-DCMAKE_CXX_FLAGS=-Wthread-safety -Werror=thread-safety"
      "-DCMAKE_CXX_STANDARD=17"
      "-DCMAKE_CXX_STANDARD_REQUIRED=ON"
  )
  set(${out_var} ${${out_var}} PARENT_SCOPE)
endfunction()

_faircap_try_thread_safety_fixture(
  thread_safety_positive.cc FAIRCAP_TSA_POSITIVE_OK)
if(NOT FAIRCAP_TSA_POSITIVE_OK)
  message(FATAL_ERROR
    "Thread safety self-check: the correctly-locked positive fixture "
    "(tests/fixtures/thread_safety_positive.cc) failed to compile under "
    "-Wthread-safety -Werror=thread-safety. The annotation macros or "
    "sync wrappers are broken.")
endif()

_faircap_try_thread_safety_fixture(
  thread_safety_negative.cc FAIRCAP_TSA_NEGATIVE_COMPILED)
if(FAIRCAP_TSA_NEGATIVE_COMPILED)
  message(FATAL_ERROR
    "Thread safety self-check: the negative fixture "
    "(tests/fixtures/thread_safety_negative.cc) — a guarded-field access "
    "without the lock — COMPILED under -Wthread-safety "
    "-Werror=thread-safety. The analysis is not firing; the gate would "
    "check nothing.")
endif()

message(STATUS "Thread safety analysis: fixture self-check passed "
               "(positive compiles, negative rejected)")
